// Tests for the Steiner engine: MST correctness vs brute force, BI1S
// improvement properties, Hanan/Fermat candidates, tree utilities, and
// multi-baseline generation.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "steiner/bi1s.hpp"
#include "steiner/mst.hpp"
#include "steiner/tree.hpp"
#include "util/rng.hpp"

namespace os = operon::steiner;
namespace og = operon::geom;

namespace {

/// Brute-force MST length via Kruskal on all pairs (reference).
double reference_mst_length(const std::vector<og::Point>& points,
                            os::Metric metric) {
  const std::size_t n = points.size();
  struct E {
    double w;
    std::size_t u, v;
  };
  std::vector<E> edges;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      edges.push_back({os::edge_length(metric, points[i], points[j]), i, j});
  std::sort(edges.begin(), edges.end(),
            [](const E& a, const E& b) { return a.w < b.w; });
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  double total = 0.0;
  std::size_t used = 0;
  for (const E& e : edges) {
    const auto ru = find(e.u), rv = find(e.v);
    if (ru == rv) continue;
    parent[ru] = rv;
    total += e.w;
    if (++used == n - 1) break;
  }
  return total;
}

std::vector<og::Point> random_points(operon::util::Rng& rng, std::size_t n,
                                     double extent) {
  std::vector<og::Point> pts(n);
  for (auto& p : pts) p = {rng.uniform(0, extent), rng.uniform(0, extent)};
  return pts;
}

}  // namespace

TEST(Mst, TrivialSizes) {
  EXPECT_TRUE(os::mst_edges({}, os::Metric::Euclidean).empty());
  std::vector<og::Point> one{{1, 1}};
  EXPECT_TRUE(os::mst_edges(one, os::Metric::Euclidean).empty());
  std::vector<og::Point> two{{0, 0}, {3, 4}};
  const auto edges = os::mst_edges(two, os::Metric::Euclidean);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(os::mst_length(two, os::Metric::Euclidean), 5.0);
  EXPECT_DOUBLE_EQ(os::mst_length(two, os::Metric::Rectilinear), 7.0);
}

TEST(Mst, MatchesKruskalReference) {
  operon::util::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const auto pts = random_points(rng, 3 + static_cast<std::size_t>(trial % 15), 1000.0);
    for (const auto metric : {os::Metric::Euclidean, os::Metric::Rectilinear}) {
      EXPECT_NEAR(os::mst_length(pts, metric),
                  reference_mst_length(pts, metric), 1e-6);
    }
  }
}

TEST(Mst, TreeIsSpanning) {
  operon::util::Rng rng(37);
  const auto pts = random_points(rng, 20, 500.0);
  const os::SteinerTree tree = os::mst_tree(pts, os::Metric::Euclidean);
  EXPECT_TRUE(tree.is_connected_tree());
  EXPECT_EQ(tree.num_terminals, 20u);
  EXPECT_EQ(tree.num_steiner(), 0u);
}

TEST(Tree, SegmentsEuclideanVsRectilinear) {
  os::SteinerTree tree;
  tree.points = {{0, 0}, {3, 4}};
  tree.num_terminals = 2;
  tree.edges = {{0, 1}};
  const auto direct = tree.segments(os::Metric::Euclidean);
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_DOUBLE_EQ(direct[0].length(), 5.0);
  const auto l_route = tree.segments(os::Metric::Rectilinear);
  ASSERT_EQ(l_route.size(), 2u);
  EXPECT_DOUBLE_EQ(og::total_length(l_route), 7.0);
}

TEST(Tree, DegenerateEdgeYieldsNoSegments) {
  os::SteinerTree tree;
  tree.points = {{1, 1}, {1, 1}};
  tree.num_terminals = 2;
  tree.edges = {{0, 1}};
  EXPECT_TRUE(tree.segments(os::Metric::Euclidean).empty());
}

TEST(Tree, RemoveRedundantSteinerSplices) {
  // Terminal - steiner(degree 2) - terminal: the Steiner point must go.
  os::SteinerTree tree;
  tree.points = {{0, 0}, {10, 0}, {5, 0}};
  tree.num_terminals = 2;
  tree.edges = {{0, 2}, {2, 1}};
  tree.remove_redundant_steiner();
  EXPECT_EQ(tree.num_points(), 2u);
  ASSERT_EQ(tree.edges.size(), 1u);
  EXPECT_TRUE(tree.is_connected_tree());
}

TEST(Tree, RemoveRedundantKeepsDegree3) {
  os::SteinerTree tree;
  tree.points = {{0, 0}, {10, 0}, {5, 5}, {5, 0}};
  tree.num_terminals = 3;
  tree.edges = {{0, 3}, {3, 1}, {3, 2}};
  tree.remove_redundant_steiner();
  EXPECT_EQ(tree.num_points(), 4u);
  EXPECT_EQ(tree.edges.size(), 3u);
}

TEST(Tree, RootedPostorderChildrenFirst) {
  os::SteinerTree tree;
  tree.points = {{0, 0}, {1, 0}, {2, 0}, {1, 1}};
  tree.num_terminals = 4;
  tree.edges = {{0, 1}, {1, 2}, {1, 3}};
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  EXPECT_EQ(rooted.parent[0], 0u);
  EXPECT_EQ(rooted.parent[1], 0u);
  EXPECT_EQ(rooted.parent[2], 1u);
  EXPECT_EQ(rooted.parent[3], 1u);
  // Postorder: every node appears after all its children.
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < rooted.postorder.size(); ++i)
    position[rooted.postorder[i]] = i;
  for (std::size_t v = 0; v < 4; ++v) {
    for (std::size_t c : rooted.children[v]) {
      EXPECT_LT(position[c], position[v]);
    }
  }
}

TEST(Hanan, GridExcludesInputPoints) {
  std::vector<og::Point> pts{{0, 0}, {2, 3}, {5, 1}};
  const auto candidates = os::hanan_candidates(pts);
  // 3x3 grid minus the 3 inputs = 6 candidates.
  EXPECT_EQ(candidates.size(), 6u);
  for (const auto& c : candidates) {
    for (const auto& p : pts) EXPECT_FALSE(c == p);
  }
}

TEST(Fermat, EquilateralCentroid) {
  const og::Point a{0, 0}, b{2, 0}, c{1, std::sqrt(3.0)};
  const og::Point f = os::fermat_point(a, b, c);
  EXPECT_NEAR(f.x, 1.0, 1e-6);
  EXPECT_NEAR(f.y, std::sqrt(3.0) / 3.0, 1e-6);
}

TEST(Fermat, ObtuseVertexDominates) {
  // Angle at origin is ~170 degrees: the Fermat point is that vertex.
  const og::Point a{0, 0}, b{10, 0.5}, c{-10, 0.5};
  const og::Point f = os::fermat_point(a, b, c);
  EXPECT_NEAR(f.x, 0.0, 1e-9);
  EXPECT_NEAR(f.y, 0.0, 1e-9);
}

TEST(Fermat, MinimizesStarLength) {
  operon::util::Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const og::Point a{rng.uniform(0, 10), rng.uniform(0, 10)};
    const og::Point b{rng.uniform(0, 10), rng.uniform(0, 10)};
    const og::Point c{rng.uniform(0, 10), rng.uniform(0, 10)};
    const og::Point f = os::fermat_point(a, b, c);
    const auto star = [&](const og::Point& p) {
      return og::euclidean(p, a) + og::euclidean(p, b) + og::euclidean(p, c);
    };
    const double best = star(f);
    // No sampled point does better (within numeric slack).
    for (int probe = 0; probe < 50; ++probe) {
      const og::Point p{rng.uniform(0, 10), rng.uniform(0, 10)};
      EXPECT_GE(star(p), best - 1e-6);
    }
  }
}

TEST(Bi1s, EquilateralGainsSteinerPoint) {
  // For an equilateral triangle the Steiner tree is ~13.4% shorter than
  // the MST; BI1S must find the Fermat point.
  std::vector<og::Point> pts{{0, 0}, {100, 0}, {50, 100.0 * std::sqrt(3.0) / 2.0}};
  os::Bi1sOptions options;
  options.metric = os::Metric::Euclidean;
  const os::SteinerTree tree = os::bi1s(pts, options);
  EXPECT_EQ(tree.num_steiner(), 1u);
  const double mst = os::mst_length(pts, os::Metric::Euclidean);
  EXPECT_LT(tree.length(os::Metric::Euclidean), mst * 0.88);
  EXPECT_TRUE(tree.is_connected_tree());
}

TEST(Bi1s, CrossRectilinear) {
  // Four corners of a plus sign: one Hanan point at center saves length.
  std::vector<og::Point> pts{{0, 5}, {10, 5}, {5, 0}, {5, 10}};
  os::Bi1sOptions options;
  options.metric = os::Metric::Rectilinear;
  const os::SteinerTree tree = os::bi1s(pts, options);
  const double mst = os::mst_length(pts, os::Metric::Rectilinear);
  EXPECT_LE(tree.length(os::Metric::Rectilinear), mst);
  EXPECT_GE(tree.num_steiner(), 1u);
  EXPECT_NEAR(tree.length(os::Metric::Rectilinear), 20.0, 1e-9);
}

TEST(Bi1s, NeverWorseThanMst) {
  operon::util::Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = random_points(rng, 4 + static_cast<std::size_t>(trial % 8), 1000.0);
    for (const auto metric : {os::Metric::Euclidean, os::Metric::Rectilinear}) {
      const os::SteinerTree tree = os::bi1s(pts, {.metric = metric});
      EXPECT_LE(tree.length(metric),
                os::mst_length(pts, metric) + 1e-6);
      EXPECT_TRUE(tree.is_connected_tree());
      EXPECT_EQ(tree.num_terminals, pts.size());
    }
  }
}

TEST(Bi1s, TwoTerminalsNoSteiner) {
  std::vector<og::Point> pts{{0, 0}, {7, 7}};
  const os::SteinerTree tree = os::bi1s(pts);
  EXPECT_EQ(tree.num_steiner(), 0u);
  EXPECT_EQ(tree.edges.size(), 1u);
}

TEST(Baselines, DistinctAndFirstIsBest) {
  operon::util::Rng rng(47);
  const auto pts = random_points(rng, 7, 1000.0);
  const auto baselines =
      os::generate_baselines(pts, os::Metric::Euclidean, 4);
  ASSERT_GE(baselines.size(), 2u);
  EXPECT_LE(baselines.size(), 4u);
  const double best = baselines[0].length(os::Metric::Euclidean);
  for (const auto& tree : baselines) {
    EXPECT_TRUE(tree.is_connected_tree());
    EXPECT_EQ(tree.num_terminals, pts.size());
    EXPECT_GE(tree.length(os::Metric::Euclidean), best - 1e-6);
  }
}

TEST(Fermat, ManyPointsUseNeighborTriples) {
  // Above the exhaustive threshold the candidate count must stay linear
  // (i * C(6,2) bound) instead of cubic, and BI1S must finish promptly.
  operon::util::Rng rng(53);
  const auto pts = random_points(rng, 40, 5000.0);
  const auto candidates = os::fermat_candidates(pts);
  EXPECT_LE(candidates.size(), 40u * 15u);
  const os::SteinerTree tree = os::bi1s(pts, {.metric = os::Metric::Euclidean});
  EXPECT_TRUE(tree.is_connected_tree());
  EXPECT_LE(tree.length(os::Metric::Euclidean),
            os::mst_length(pts, os::Metric::Euclidean) + 1e-6);
}

TEST(Baselines, SingleRequestedReturnsOne) {
  std::vector<og::Point> pts{{0, 0}, {10, 0}, {5, 8}};
  const auto baselines = os::generate_baselines(pts, os::Metric::Euclidean, 1);
  EXPECT_EQ(baselines.size(), 1u);
}
