// Integration tests: the full OPERON pipeline end-to-end on synthetic
// designs (both solvers), the power-map builder, and the Table 1
// qualitative ordering electrical > GLOW > OPERON on a small case.

#include <gtest/gtest.h>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/powermap.hpp"

namespace ocore = operon::core;
namespace obg = operon::benchgen;
namespace oc = operon::codesign;
namespace om = operon::model;

namespace {

obg::BenchmarkSpec small_spec(std::uint64_t seed) {
  obg::BenchmarkSpec spec;
  spec.name = "it";
  spec.num_groups = 12;
  spec.bits_lo = 4;
  spec.bits_hi = 12;
  spec.sink_blocks_lo = 1;
  spec.sink_blocks_hi = 2;
  spec.seed = seed;
  return spec;
}

}  // namespace

TEST(OperonFlow, EndToEndLr) {
  const om::Design design = obg::generate_benchmark(small_spec(900));
  ocore::OperonOptions options;
  options.solver = ocore::SolverKind::Lr;
  const auto result = ocore::run_operon(design, options);

  EXPECT_GT(result.processing.num_hyper_nets(), 0u);
  ASSERT_EQ(result.sets.size(), result.processing.num_hyper_nets());
  ASSERT_EQ(result.selection.size(), result.sets.size());
  EXPECT_TRUE(result.violations.clean());
  EXPECT_GT(result.stats.power_pj, 0.0);
  EXPECT_GT(result.stats.optical_nets, 0u);
  EXPECT_GE(result.stats.lr_iterations, 1u);

  // WDM stage ran and is consistent.
  EXPECT_GT(result.wdm_plan.connections.size(), 0u);
  EXPECT_TRUE(result.wdm_plan.feasible);
  EXPECT_LE(result.wdm_plan.final_wdms, result.wdm_plan.initial_wdms);
  EXPECT_GT(result.stats.times.total_s(), 0.0);
}

TEST(OperonFlow, EndToEndIlpMatchesOrBeatsLr) {
  const om::Design design = obg::generate_benchmark(small_spec(901));
  ocore::OperonOptions ilp;
  ilp.solver = ocore::SolverKind::IlpExact;
  ilp.select.time_limit_s = 30.0;
  const auto ilp_result = ocore::run_operon(design, ilp);

  ocore::OperonOptions lr;
  lr.solver = ocore::SolverKind::Lr;
  const auto lr_result = ocore::run_operon(design, lr);

  EXPECT_TRUE(ilp_result.violations.clean());
  EXPECT_TRUE(lr_result.violations.clean());
  if (ilp_result.stats.proven_optimal) {
    EXPECT_LE(ilp_result.stats.power_pj, lr_result.stats.power_pj + 1e-9);
  }
}

TEST(OperonFlow, Table1OrderingHolds) {
  // electrical ~3.5x optical; OPERON <= GLOW.
  const om::Design design = obg::generate_benchmark(small_spec(902));
  ocore::OperonOptions options;
  options.solver = ocore::SolverKind::Lr;
  const auto operon_result = ocore::run_operon(design, options);

  const auto electrical =
      operon::baseline::route_electrical(operon_result.sets, options.params);
  const auto glow =
      operon::baseline::route_optical_glow(operon_result.sets, options.params);

  EXPECT_GT(electrical.total_power_pj, glow.total_power_pj * 1.5);
  EXPECT_LE(operon_result.stats.power_pj, glow.total_power_pj * 1.02 + 1e-9);
}

TEST(OperonFlow, SelectionOnlyReproducesPipelineStage) {
  const om::Design design = obg::generate_benchmark(small_spec(903));
  ocore::OperonOptions options;
  options.solver = ocore::SolverKind::Lr;
  const auto full = ocore::run_operon(design, options);
  const auto redo = ocore::run_selection_only(full.sets, options);
  EXPECT_NEAR(redo.stats.power_pj, full.stats.power_pj, 1e-9);
  EXPECT_EQ(redo.selection, full.selection);
}

TEST(PowerMap, DepositsMatchTotals) {
  const om::Design design = obg::generate_benchmark(small_spec(904));
  ocore::OperonOptions options;
  const auto result = ocore::run_operon(design, options);

  std::vector<oc::Candidate> chosen;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    chosen.push_back(result.sets[i].options[result.selection[i]]);
  }
  const auto map = ocore::build_power_map(design.chip, result.sets, chosen,
                                          options.params, 32);
  ASSERT_EQ(map.optical.size(), 32u * 32u);

  double optical_expected = 0.0, electrical_expected = 0.0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    optical_expected += chosen[i].optical_power_pj;
    electrical_expected += chosen[i].electrical_power_pj;
  }
  EXPECT_NEAR(map.total_optical(), optical_expected, 1e-6);
  EXPECT_NEAR(map.total_electrical(), electrical_expected, 1e-6);
  EXPECT_NEAR(map.total_optical() + map.total_electrical(), result.stats.power_pj,
              1e-6);
}

TEST(PowerMap, HotspotShareAndRendering) {
  const om::Design design = obg::generate_benchmark(small_spec(905));
  ocore::OperonOptions options;
  const auto result = ocore::run_operon(design, options);
  std::vector<oc::Candidate> chosen;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    chosen.push_back(result.sets[i].options[result.selection[i]]);
  }
  const auto map = ocore::build_power_map(design.chip, result.sets, chosen,
                                          options.params, 16);
  const double top = map.optical_hotspot_share(8);
  EXPECT_GT(top, 0.0);
  EXPECT_LE(top, 1.0 + 1e-12);
  EXPECT_GE(map.optical_hotspot_share(16 * 16), 1.0 - 1e-9);

  const std::string art = map.ascii(true, 2);
  EXPECT_FALSE(art.empty());
  const std::string csv = map.to_csv();
  EXPECT_NE(csv.find("x,y,optical_pj,electrical_pj"), std::string::npos);
}

TEST(PowerMap, OperonCoolsElectricalLayerVsGlow) {
  // Fig 9's claim on a small instance: OPERON's electrical layer carries
  // (much) less total energy than GLOW's *when GLOW has fallbacks*, and
  // never more than the all-electrical design.
  const om::Design design = obg::generate_benchmark(small_spec(906));
  ocore::OperonOptions options;
  const auto result = ocore::run_operon(design, options);

  const auto glow =
      operon::baseline::route_optical_glow(result.sets, options.params);
  std::vector<oc::Candidate> operon_chosen;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    operon_chosen.push_back(result.sets[i].options[result.selection[i]]);
  }
  const auto operon_map = ocore::build_power_map(
      design.chip, result.sets, operon_chosen, options.params, 24);
  const auto glow_map = ocore::build_power_map(design.chip, result.sets,
                                               glow.chosen, options.params, 24);
  EXPECT_LE(operon_map.total_electrical(),
            glow_map.total_electrical() + 1e-6);
}
