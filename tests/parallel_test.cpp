// Tests for the deterministic fork-join layer (util::ThreadPool /
// util::parallel_for) and for the concurrency invariants built on it:
// the striped-mutex crossing cache survives a multi-thread hammer
// (exercised under TSan by the CI sanitizer job), and the end-to-end
// pipeline produces bit-identical results at every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/selection.hpp"
#include "core/flow.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ou = operon::util;
namespace oc = operon::codesign;

namespace {

const operon::model::TechParams kParams =
    operon::model::TechParams::dac18_defaults();

operon::model::Design small_design(std::uint64_t seed,
                                   std::size_t groups = 30) {
  operon::benchgen::BenchmarkSpec spec;
  spec.name = "parallel-test";
  spec.num_groups = groups;
  spec.seed = seed;
  return operon::benchgen::generate_benchmark(spec);
}

std::vector<oc::CandidateSet> candidates_for(
    const operon::model::Design& design) {
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  return oc::generate_candidates(design, nets.hyper_nets, kParams);
}

}  // namespace

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 3u, 8u, 17u}) {
    std::vector<int> hits(1000, 0);
    ou::parallel_for(hits.size(), threads,
                     [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, HandlesEdgeSizes) {
  std::atomic<int> count{0};
  ou::parallel_for(0, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  ou::parallel_for(1, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
  // More threads than work.
  std::vector<int> hits(3, 0);
  ou::parallel_for(hits.size(), 16, [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ResolveThreads) {
  EXPECT_GE(ou::resolve_threads(0), 1u);
  EXPECT_EQ(ou::resolve_threads(1), 1u);
  EXPECT_EQ(ou::resolve_threads(7), 7u);
}

TEST(ParallelFor, BitIdenticalAcrossThreadCounts) {
  const std::size_t n = 512;
  const auto compute = [](std::size_t i) {
    double v = static_cast<double>(i) + 0.5;
    for (int k = 0; k < 50; ++k) v = std::sin(v) * 1.7 + std::sqrt(v + 2.0);
    return v;
  };
  std::vector<double> serial(n), parallel(n);
  ou::parallel_for(n, 1, [&](std::size_t i) { serial[i] = compute(i); });
  for (std::size_t threads : {2u, 5u, 8u}) {
    ou::parallel_for(n, threads,
                     [&](std::size_t i) { parallel[i] = compute(i); });
    EXPECT_EQ(serial, parallel);  // exact, not approximate
  }
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  EXPECT_THROW(
      ou::parallel_for(100, 4,
                       [](std::size_t i) {
                         if (i == 63) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ParallelFor, SplitRngsIndependentOfConsumptionOrder) {
  // Child streams depend only on the base seed and the index, so drawing
  // them under different thread counts yields identical values.
  std::vector<double> reference;
  {
    ou::Rng base(42);
    auto rngs = ou::split_rngs(base, 64);
    reference.resize(rngs.size());
    for (std::size_t i = 0; i < rngs.size(); ++i) {
      reference[i] = rngs[i].uniform01();
    }
  }
  for (std::size_t threads : {2u, 8u}) {
    ou::Rng base(42);
    auto rngs = ou::split_rngs(base, 64);
    std::vector<double> drawn(rngs.size());
    ou::parallel_for(rngs.size(), threads,
                     [&](std::size_t i) { drawn[i] = rngs[i].uniform01(); });
    EXPECT_EQ(reference, drawn);
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ou::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::size_t> out(100, 0);
  for (std::size_t round = 1; round <= 5; ++round) {
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = i * round; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * round);
  }
}

TEST(ThreadPool, SizeOneRunsInline) {
  ou::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

// The CLAUDE.md-documented latent bug this PR fixes: crossings() is
// const but caches lazily, which was a data race under any concurrency.
// Hammer the cache from many threads in clashing orders; TSan (CI job)
// verifies the synchronization, and the counts must match a serially
// filled evaluator exactly.
TEST(CrossingCache, ConcurrentHammerMatchesSerial) {
  const auto design = small_design(11);
  const auto sets = candidates_for(design);

  // Serial reference.
  oc::SelectionEvaluator reference(sets, kParams);
  long long expected_sum = 0;
  const auto visit = [&](const oc::SelectionEvaluator& evaluator,
                         bool reversed) {
    long long sum = 0;
    const std::size_t n = evaluator.num_nets();
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = reversed ? n - 1 - step : step;
      for (std::size_t m : evaluator.interacting(i)) {
        for (std::size_t ci = 0; ci < sets[i].options.size(); ++ci) {
          for (std::size_t cm = 0; cm < sets[m].options.size(); ++cm) {
            for (int c : evaluator.crossings(i, ci, m, cm)) sum += c;
          }
        }
      }
    }
    return sum;
  };
  expected_sum = visit(reference, false);
  ASSERT_GT(expected_sum, 0) << "design too sparse to exercise the cache";

  oc::SelectionEvaluator hammered(sets, kParams);
  std::vector<long long> sums(8, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < sums.size(); ++t) {
    threads.emplace_back(
        [&, t] { sums[t] = visit(hammered, /*reversed=*/t % 2 == 1); });
  }
  for (auto& thread : threads) thread.join();
  for (long long sum : sums) EXPECT_EQ(sum, expected_sum);
}

TEST(CrossingCache, ParallelPrecomputeMatchesLazy) {
  const auto design = small_design(12);
  const auto sets = candidates_for(design);
  oc::SelectionEvaluator lazy(sets, kParams);
  oc::SelectionEvaluator precomputed(sets, kParams);
  precomputed.precompute_crossings(4);
  for (std::size_t i = 0; i < lazy.num_nets(); ++i) {
    for (std::size_t m : lazy.interacting(i)) {
      for (std::size_t ci = 0; ci < sets[i].options.size(); ++ci) {
        for (std::size_t cm = 0; cm < sets[m].options.size(); ++cm) {
          const auto a = lazy.crossings(i, ci, m, cm);
          const auto b = precomputed.crossings(i, ci, m, cm);
          EXPECT_EQ(std::vector<int>(a.begin(), a.end()),
                    std::vector<int>(b.begin(), b.end()));
        }
      }
    }
  }
}

// Satellite regression: generation fan-out must not change a single bit
// of the candidate sets.
TEST(Determinism, GenerationIdenticalAcrossThreadCounts) {
  const auto design = small_design(13);
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);

  oc::GenerationOptions serial_options;
  serial_options.threads = 1;
  const auto reference =
      oc::generate_candidates(design, nets.hyper_nets, kParams, serial_options);

  for (std::size_t threads : {2u, 8u}) {
    oc::GenerationOptions options;
    options.threads = threads;
    const auto sets =
        oc::generate_candidates(design, nets.hyper_nets, kParams, options);
    ASSERT_EQ(sets.size(), reference.size());
    for (std::size_t i = 0; i < sets.size(); ++i) {
      ASSERT_EQ(sets[i].options.size(), reference[i].options.size());
      EXPECT_EQ(sets[i].electrical_index, reference[i].electrical_index);
      for (std::size_t c = 0; c < sets[i].options.size(); ++c) {
        const auto& a = sets[i].options[c];
        const auto& b = reference[i].options[c];
        EXPECT_EQ(a.power_pj, b.power_pj);  // bit-exact
        EXPECT_EQ(a.edge_kinds, b.edge_kinds);
        EXPECT_EQ(a.paths.size(), b.paths.size());
        for (std::size_t p = 0; p < a.paths.size(); ++p) {
          EXPECT_EQ(a.paths[p].static_loss_db, b.paths[p].static_loss_db);
        }
      }
    }
  }
}

// The headline invariant: the full pipeline — selection, power,
// violations, WDM plan — is byte-identical at threads 1, 2, and 8.
TEST(Determinism, RunOperonIdenticalAcrossThreadCounts) {
  const auto design = small_design(14);

  operon::core::OperonOptions serial;
  serial.threads = 1;
  const auto reference = operon::core::run_operon(design, serial);

  for (std::size_t threads : {2u, 8u}) {
    operon::core::OperonOptions options;
    options.threads = threads;
    const auto result = operon::core::run_operon(design, options);

    EXPECT_EQ(result.selection, reference.selection);
    EXPECT_EQ(result.stats.power_pj, reference.stats.power_pj);  // bit-exact
    EXPECT_EQ(result.violations.violated_paths,
              reference.violations.violated_paths);
    EXPECT_EQ(result.violations.total_excess_db,
              reference.violations.total_excess_db);
    EXPECT_EQ(result.violations.worst_loss_db,
              reference.violations.worst_loss_db);
    EXPECT_EQ(result.stats.optical_nets, reference.stats.optical_nets);
    EXPECT_EQ(result.stats.electrical_nets, reference.stats.electrical_nets);
    EXPECT_EQ(result.stats.lr_iterations, reference.stats.lr_iterations);

    // WDM plan, field by field.
    const auto& a = result.wdm_plan;
    const auto& b = reference.wdm_plan;
    EXPECT_EQ(a.initial_wdms, b.initial_wdms);
    EXPECT_EQ(a.final_wdms, b.final_wdms);
    EXPECT_EQ(a.total_move_um, b.total_move_um);
    EXPECT_EQ(a.feasible, b.feasible);
    ASSERT_EQ(a.allocations.size(), b.allocations.size());
    for (std::size_t k = 0; k < a.allocations.size(); ++k) {
      EXPECT_EQ(a.allocations[k].connection, b.allocations[k].connection);
      EXPECT_EQ(a.allocations[k].wdm, b.allocations[k].wdm);
      EXPECT_EQ(a.allocations[k].bits, b.allocations[k].bits);
    }
  }
}

// The ILP path must also be untouched by the parallel precompute. A
// small instance keeps the branch-and-bound far from its deadline, so
// the proven optimum (not a timing-dependent incumbent) is compared.
TEST(Determinism, ExactSolverIdenticalAcrossThreadCounts) {
  const auto design = small_design(15, /*groups=*/12);

  operon::core::OperonOptions serial;
  serial.solver = operon::core::SolverKind::IlpExact;
  serial.select.time_limit_s = 30.0;
  serial.threads = 1;
  const auto reference = operon::core::run_operon(design, serial);
  ASSERT_TRUE(reference.stats.proven_optimal);

  operon::core::OperonOptions options = serial;
  options.threads = 4;
  const auto result = operon::core::run_operon(design, options);
  ASSERT_TRUE(result.stats.proven_optimal);
  EXPECT_EQ(result.selection, reference.selection);
  EXPECT_EQ(result.stats.power_pj, reference.stats.power_pj);
}

// Semantic metrics — every counter/gauge/histogram the pipeline feeds
// except the timing-flagged gauges — must be bit-identical at any
// thread count, on a table1-shaped benchmark, for both solver families.
// This is the observability half of the determinism contract (DESIGN.md
// "Observability"): parallelism may change wall-clock attribution but
// never what the pipeline did. The same contract must hold one level
// up, through the ledger: records written at different thread counts
// carry identical identity keys and semantics, so the regression
// sentinel (obs::compare_ledgers) pairs them and reports "ok".
TEST(Determinism, SemanticMetricsIdenticalAcrossThreadCounts) {
  operon::benchgen::BenchmarkSpec spec = operon::benchgen::table1_spec("I1");
  spec.num_groups = 36;  // shrunk I1 slice: same shape, test-sized
  const auto design = operon::benchgen::generate_benchmark(spec);

  for (const auto solver : {operon::core::SolverKind::Lr,
                            operon::core::SolverKind::IlpExact}) {
    operon::core::OperonOptions serial;
    serial.solver = solver;
    serial.select.time_limit_s = 30.0;
    serial.threads = 1;
    operon::obs::LedgerCollector reference_ledger;
    operon::core::OperonResult reference;
    {
      const operon::obs::ScopedLedger scope(reference_ledger);
      operon::obs::set_ledger_context("I1-slice", spec.seed);
      reference = operon::core::run_operon(design, serial);
    }
    ASSERT_EQ(reference_ledger.size(), 1u);

    // The hot paths actually reported in.
    const auto& metrics = reference.stats.metrics;
    EXPECT_EQ(metrics.counter("core.runs"), 1u);
    EXPECT_GT(metrics.counter("cluster.kmeans.runs"), 0u);
    EXPECT_GT(metrics.counter("codesign.generate.candidates"), 0u);
    EXPECT_GT(metrics.counter("codesign.crossing.cache_queries"), 0u);
    EXPECT_GT(metrics.counter("flow.mcmf.solves"), 0u);
    if (solver == operon::core::SolverKind::Lr) {
      EXPECT_GT(metrics.counter("lr.iterations"), 0u);
      ASSERT_NE(metrics.find("lr.subgradient_norm"), nullptr);
      EXPECT_EQ(metrics.find("lr.subgradient_norm")->kind,
                operon::obs::MetricKind::Histogram);
    } else {
      EXPECT_GT(metrics.counter("codesign.exact.nodes_explored"), 0u);
    }

    for (std::size_t threads : {2u, 8u}) {
      operon::core::OperonOptions options = serial;
      options.threads = threads;
      operon::obs::LedgerCollector ledger;
      operon::core::OperonResult result;
      {
        const operon::obs::ScopedLedger scope(ledger);
        operon::obs::set_ledger_context("I1-slice", spec.seed);
        result = operon::core::run_operon(design, options);
      }
      EXPECT_TRUE(operon::obs::semantic_equal(result.stats.metrics,
                                              reference.stats.metrics))
          << "solver=" << static_cast<int>(solver)
          << " threads=" << threads;

      // The ledger view of the same pair: identical identity key
      // (options fingerprint excludes the thread knob), identical
      // semantics, verdict "ok".
      const auto records = ledger.records();
      ASSERT_EQ(records.size(), 1u);
      EXPECT_EQ(records[0].threads, threads);
      EXPECT_EQ(operon::obs::ledger_key(records[0]),
                operon::obs::ledger_key(reference_ledger.records()[0]));
      const operon::obs::CompareResult compared = operon::obs::compare_ledgers(
          reference_ledger.records(), records);
      EXPECT_EQ(compared.matched, 1u);
      EXPECT_TRUE(compared.semantic_ok())
          << "solver=" << static_cast<int>(solver) << " threads=" << threads
          << " verdict=" << compared.verdict();
      EXPECT_EQ(compared.verdict(),
                compared.timing.empty() ? "ok" : "timing-regression");
    }
  }
}
