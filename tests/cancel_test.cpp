// Cancellation determinism suite: a run stopped by the wall-clock
// budget is replayable bit-identically through stop_at_checkpoint at
// any thread count, every early-stopped run still passes the
// independent plan auditor (core::verify_result), an external interrupt
// degrades instead of throwing, and the watchdog detects a stage that
// stops checkpointing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/verify.hpp"
#include "model/diagnostic.hpp"
#include "obs/obs.hpp"
#include "obs/resource.hpp"
#include "util/stop.hpp"

namespace oc = operon::core;
namespace om = operon::model;
namespace oo = operon::obs;
namespace ou = operon::util;

namespace {

operon::model::Design cancel_design(std::uint64_t seed = 21) {
  operon::benchgen::BenchmarkSpec spec;
  spec.name = "cancel-design";
  spec.num_groups = 10;
  spec.bits_lo = 2;
  spec.bits_hi = 5;
  spec.seed = seed;
  return operon::benchgen::generate_benchmark(spec);
}

bool has_code(const std::vector<om::Diagnostic>& diagnostics,
              om::DiagCode code) {
  for (const om::Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.code == code) return true;
  }
  return false;
}

/// Semantic equality of two results: selected plan, power, trip
/// record, degraded flag, diagnostics, and every non-timing metric
/// point must match bit-identically.
void expect_identical(const oc::OperonResult& a, const oc::OperonResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.stats.power_pj, b.stats.power_pj) << label;
  EXPECT_EQ(a.selection, b.selection) << label;
  EXPECT_EQ(a.stats.trip_checkpoint, b.stats.trip_checkpoint) << label;
  EXPECT_EQ(a.stats.trip_stage, b.stats.trip_stage) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size()) << label;
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].code, b.diagnostics[i].code) << label;
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message) << label;
  }
  // Timing-flagged points (wall-clock, pool telemetry) legitimately
  // differ across thread counts; the semantic points must not.
  const auto semantic = [](const oc::OperonResult& result) {
    std::vector<oo::MetricPoint> points;
    for (const oo::MetricPoint& point : result.stats.metrics.points) {
      if (!point.timing) points.push_back(point);
    }
    return points;
  };
  const std::vector<oo::MetricPoint> sa = semantic(a);
  const std::vector<oo::MetricPoint> sb = semantic(b);
  ASSERT_EQ(sa.size(), sb.size()) << label;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(sa[i] == sb[i]) << label << " point=" << sa[i].name;
  }
}

}  // namespace

TEST(Cancel, StopAtCheckpointDegradesAndVerifies) {
  const om::Design design = cancel_design();
  oc::OperonOptions options;
  options.stop_at_checkpoint = 5;
  const oc::OperonResult result = oc::run_operon(design, options);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.stats.trip_checkpoint, 5u);
  EXPECT_FALSE(result.stats.trip_stage.empty());
  EXPECT_TRUE(has_code(result.diagnostics, om::DiagCode::RunTimeLimit));
  EXPECT_TRUE(oc::verify_result(result, options).empty());
}

TEST(Cancel, StopAtIsBitIdenticalAcrossThreadCounts) {
  const om::Design design = cancel_design();
  for (const std::uint64_t stop_at : {2u, 9u, 30u}) {
    oc::OperonOptions base;
    base.stop_at_checkpoint = stop_at;
    base.threads = 1;
    const oc::OperonResult reference = oc::run_operon(design, base);
    for (const std::size_t threads : {2u, 8u}) {
      oc::OperonOptions options = base;
      options.threads = threads;
      const oc::OperonResult result = oc::run_operon(design, options);
      expect_identical(reference, result,
                       "stop_at=" + std::to_string(stop_at) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST(Cancel, EveryEarlyStopPassesTheAuditor) {
  // Sweep the trip point across the whole checkpoint range: wherever
  // the run is cut, the degraded plan must satisfy the independent
  // post-hoc audit, and a trip must always mark the run degraded.
  const om::Design design = cancel_design(22);
  oc::OperonOptions complete_options;
  const oc::OperonResult complete = oc::run_operon(design, complete_options);
  EXPECT_EQ(complete.stats.trip_checkpoint, 0u);

  for (const std::uint64_t stop_at : {1u, 3u, 7u, 15u, 40u, 200u, 100000u}) {
    oc::OperonOptions options;
    options.stop_at_checkpoint = stop_at;
    const oc::OperonResult result = oc::run_operon(design, options);
    const std::string label = "stop_at=" + std::to_string(stop_at);
    EXPECT_TRUE(oc::verify_result(result, options).empty()) << label;
    if (result.stats.trip_checkpoint != 0) {
      EXPECT_EQ(result.stats.trip_checkpoint, stop_at) << label;
      EXPECT_TRUE(result.degraded) << label;
      EXPECT_TRUE(has_code(result.diagnostics, om::DiagCode::RunTimeLimit))
          << label;
    } else {
      // The run finished before the replay checkpoint was reached — it
      // must then be indistinguishable from the unbudgeted run.
      expect_identical(complete, result, label);
    }
  }
}

TEST(Cancel, WallClockTripReplaysBitIdentically) {
  const om::Design design = cancel_design(23);
  oc::OperonOptions timed;
  timed.run_time_limit_s = 1e-6;  // trips at the first checkpoint wave
  const oc::OperonResult tripped = oc::run_operon(design, timed);
  ASSERT_NE(tripped.stats.trip_checkpoint, 0u);
  EXPECT_TRUE(tripped.degraded);
  EXPECT_TRUE(has_code(tripped.diagnostics, om::DiagCode::RunTimeLimit));
  EXPECT_TRUE(oc::verify_result(tripped, timed).empty());

  // Replaying the recorded checkpoint must reproduce the whole result —
  // same diagnostics text, same plan — at any thread count, even though
  // the replay never consults the wall clock.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    oc::OperonOptions replay;
    replay.stop_at_checkpoint = tripped.stats.trip_checkpoint;
    replay.threads = threads;
    const oc::OperonResult replayed = oc::run_operon(design, replay);
    expect_identical(tripped, replayed,
                     "replay threads=" + std::to_string(threads));
  }
}

TEST(Cancel, ExternalInterruptDegradesWithRunInterrupted) {
  const om::Design design = cancel_design(24);
  ou::StopSource external;
  external.request_stop();  // as the CLI's SIGINT handler would
  oc::OperonOptions options;
  options.stop = external.token();
  const oc::OperonResult result = oc::run_operon(design, options);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.stats.trip_checkpoint, 1u);
  EXPECT_TRUE(has_code(result.diagnostics, om::DiagCode::RunInterrupted));
  EXPECT_FALSE(has_code(result.diagnostics, om::DiagCode::RunTimeLimit));
  EXPECT_TRUE(oc::verify_result(result, options).empty());
}

TEST(Cancel, SelectionOnlyHonorsStopAt) {
  const om::Design design = cancel_design(25);
  oc::OperonOptions prep_options;
  oc::OperonResult prep = oc::run_operon(design, prep_options);

  oc::OperonOptions options;
  options.solver = oc::SolverKind::IlpExact;
  options.stop_at_checkpoint = 1;
  const oc::OperonResult result =
      oc::run_selection_only(prep.sets, options);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.stats.trip_checkpoint, 1u);
  EXPECT_TRUE(has_code(result.diagnostics, om::DiagCode::RunTimeLimit));
}

TEST(Cancel, PortfolioRaceCheckpointsReplayDeterministically) {
  // The portfolio polls the run token at exactly two numbered serial
  // checkpoints ("portfolio.race": pre-race and post-join). Tripping
  // either discards every lane result and degrades onto the fallback
  // member under the tripped token — replayable bit-identically at any
  // thread count, with the dedicated fallback warning text.
  const om::Design design = cancel_design(26);
  oc::OperonOptions prep_options;
  oc::OperonResult prep = oc::run_operon(design, prep_options);

  for (const std::uint64_t stop_at : {1u, 2u}) {
    oc::OperonOptions options;
    options.solver = oc::SolverKind::Portfolio;
    options.stop_at_checkpoint = stop_at;
    options.threads = 1;
    const oc::OperonResult reference =
        oc::run_selection_only(prep.sets, options);
    const std::string label = "stop_at=" + std::to_string(stop_at);
    EXPECT_TRUE(reference.degraded) << label;
    EXPECT_EQ(reference.stats.trip_checkpoint, stop_at) << label;
    EXPECT_EQ(reference.stats.trip_stage, "portfolio.race") << label;
    EXPECT_TRUE(has_code(reference.diagnostics, om::DiagCode::SolverTimeLimit))
        << label;
    bool fallback_warned = false;
    for (const om::Diagnostic& diagnostic : reference.diagnostics) {
      if (diagnostic.message.find("portfolio race stopped by the run "
                                  "budget") != std::string::npos) {
        fallback_warned = true;
      }
    }
    EXPECT_TRUE(fallback_warned) << label;

    for (const std::size_t threads : {2u, 8u}) {
      oc::OperonOptions replay = options;
      replay.threads = threads;
      const oc::OperonResult result =
          oc::run_selection_only(prep.sets, replay);
      expect_identical(reference, result,
                       label + " threads=" + std::to_string(threads));
    }
  }
}

TEST(Cancel, PortfolioWallClockTripReplaysBitIdentically) {
  // A real wall-clock trip during a portfolio run records its numbered
  // checkpoint like any other stage; replaying it via
  // stop_at_checkpoint reproduces the whole degraded result.
  const om::Design design = cancel_design(27);
  oc::OperonOptions timed;
  timed.solver = oc::SolverKind::Portfolio;
  timed.run_time_limit_s = 1e-6;
  const oc::OperonResult tripped = oc::run_operon(design, timed);
  ASSERT_NE(tripped.stats.trip_checkpoint, 0u);
  EXPECT_TRUE(tripped.degraded);
  EXPECT_TRUE(oc::verify_result(tripped, timed).empty());

  for (const std::size_t threads : {1u, 4u}) {
    oc::OperonOptions replay;
    replay.solver = oc::SolverKind::Portfolio;
    replay.stop_at_checkpoint = tripped.stats.trip_checkpoint;
    replay.threads = threads;
    const oc::OperonResult replayed = oc::run_operon(design, replay);
    expect_identical(tripped, replayed,
                     "portfolio replay threads=" + std::to_string(threads));
  }
}

// -- watchdog --------------------------------------------------------------

TEST(Watchdog, FiresOnSilentTokenWithStallReport) {
  ou::StopSource source;
  source.arm(0.0);
  ou::StopToken token = source.token();
  EXPECT_FALSE(token.checkpoint("cluster.group"));  // one heartbeat, then silence

  std::mutex mutex;
  std::condition_variable cv;
  std::string report;
  bool fired = false;
  oo::Watchdog watchdog(token, std::chrono::milliseconds(10),
                        [&](const std::string& r) {
                          const std::lock_guard<std::mutex> lock(mutex);
                          report = r;
                          fired = true;
                          cv.notify_all();
                        });
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return fired; }));
  }
  EXPECT_TRUE(watchdog.fired());
  EXPECT_NE(report.find("no stop-token checkpoint"), std::string::npos)
      << report;
  EXPECT_NE(report.find("cluster.group"), std::string::npos) << report;
  EXPECT_NE(report.find("open spans"), std::string::npos) << report;
}

TEST(Watchdog, StaysQuietWhileCheckpointsFlow) {
  ou::StopSource source;
  source.arm(0.0);
  ou::StopToken token = source.token();
  std::atomic<bool> fired{false};
  {
    oo::Watchdog watchdog(token, std::chrono::milliseconds(200),
                          [&](const std::string&) { fired = true; });
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(120);
    while (std::chrono::steady_clock::now() < until) {
      token.checkpoint("lr.iteration");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_FALSE(fired.load());
}

TEST(Watchdog, OpenSpanRegistryTracksLiveSpans) {
  oo::Observation observation;
  {
    const oo::ScopedObservation scope(observation);
    OPERON_SPAN("cancel.outer");
    {
      OPERON_SPAN("cancel.inner");
      const std::string open = oo::describe_open_spans();
      EXPECT_NE(open.find("cancel.outer > cancel.inner"), std::string::npos)
          << open;
    }
    EXPECT_EQ(oo::describe_open_spans().find("cancel.inner"),
              std::string::npos);
  }
  EXPECT_NE(oo::describe_open_spans().find("(no open spans)"),
            std::string::npos);
}
