// Tests for the LP/MIP substrate: simplex on known LPs (optimal,
// infeasible, unbounded, equality, maximize), branch-and-bound on
// knapsacks and set covers cross-checked against brute force, time-limit
// behaviour, and McCormick product linearization (used by the OPERON ILP
// for the quadratic crossing terms).

#include <gtest/gtest.h>

#include <cmath>

#include "ilp/bnb.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace oi = operon::ilp;

TEST(Model, EvaluateAndFeasible) {
  oi::Model model;
  const auto x = model.add_continuous(0, 10, "x");
  const auto y = model.add_continuous(0, 10, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, oi::Relation::LessEq, 5.0);
  model.set_objective({{x, 2.0}, {y, 3.0}}, oi::Sense::Maximize);
  EXPECT_TRUE(model.is_feasible({2.0, 3.0}));
  EXPECT_FALSE(model.is_feasible({4.0, 3.0}));
  EXPECT_FALSE(model.is_feasible({-1.0, 0.0}));
  EXPECT_DOUBLE_EQ(model.evaluate_objective({2.0, 3.0}), 13.0);
}

TEST(Model, IntegralityInFeasibility) {
  oi::Model model;
  model.add_binary("b");
  EXPECT_TRUE(model.is_feasible({1.0}));
  EXPECT_FALSE(model.is_feasible({0.5}));
}

TEST(Model, ValidateCatchesBadVarIndex) {
  oi::Model model;
  model.add_binary("b");
  model.add_constraint({{5, 1.0}}, oi::Relation::LessEq, 1.0);
  EXPECT_THROW(model.validate(), operon::util::CheckError);
}

TEST(Simplex, TextbookMaximize) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36.
  oi::Model model;
  const auto x = model.add_continuous(0, 100, "x");
  const auto y = model.add_continuous(0, 100, "y");
  model.add_constraint({{x, 1.0}}, oi::Relation::LessEq, 4.0);
  model.add_constraint({{y, 2.0}}, oi::Relation::LessEq, 12.0);
  model.add_constraint({{x, 3.0}, {y, 2.0}}, oi::Relation::LessEq, 18.0);
  model.set_objective({{x, 3.0}, {y, 5.0}}, oi::Sense::Maximize);
  const auto result = oi::solve_lp(model);
  ASSERT_EQ(result.status, oi::LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 36.0, 1e-7);
  EXPECT_NEAR(result.values[x], 2.0, 1e-7);
  EXPECT_NEAR(result.values[y], 6.0, 1e-7);
}

TEST(Simplex, MinimizeWithGreaterEq) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2 -> (8, 2)? obj: prefer x
  // (cheaper): x=10-y... coefficients: x costs 2, y costs 3 -> all x:
  // x=10, y=0, obj 20. With x <= 6: x=6, y=4, obj 24.
  oi::Model model;
  const auto x = model.add_continuous(0, 6, "x");
  const auto y = model.add_continuous(0, 100, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, oi::Relation::GreaterEq, 10.0);
  model.set_objective({{x, 2.0}, {y, 3.0}}, oi::Sense::Minimize);
  const auto result = oi::solve_lp(model);
  ASSERT_EQ(result.status, oi::LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 24.0, 1e-7);
  EXPECT_NEAR(result.values[x], 6.0, 1e-7);
  EXPECT_NEAR(result.values[y], 4.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  oi::Model model;
  const auto x = model.add_continuous(0, 10, "x");
  const auto y = model.add_continuous(0, 10, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, oi::Relation::Equal, 7.0);
  model.set_objective({{x, 1.0}, {y, 4.0}}, oi::Sense::Minimize);
  const auto result = oi::solve_lp(model);
  ASSERT_EQ(result.status, oi::LpStatus::Optimal);
  EXPECT_NEAR(result.objective, 7.0, 1e-7);  // x=7, y=0
}

TEST(Simplex, InfeasibleDetected) {
  oi::Model model;
  const auto x = model.add_continuous(0, 1, "x");
  model.add_constraint({{x, 1.0}}, oi::Relation::GreaterEq, 2.0);
  model.set_objective({{x, 1.0}}, oi::Sense::Minimize);
  EXPECT_EQ(oi::solve_lp(model).status, oi::LpStatus::Infeasible);
}

TEST(Simplex, ConflictingEqualitiesInfeasible) {
  oi::Model model;
  const auto x = model.add_continuous(0, 10, "x");
  model.add_constraint({{x, 1.0}}, oi::Relation::Equal, 3.0);
  model.add_constraint({{x, 1.0}}, oi::Relation::Equal, 4.0);
  model.set_objective({{x, 1.0}}, oi::Sense::Minimize);
  EXPECT_EQ(oi::solve_lp(model).status, oi::LpStatus::Infeasible);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with x,y in [-5, 5], x + y >= -3 -> obj -3.
  oi::Model model;
  const auto x = model.add_continuous(-5, 5, "x");
  const auto y = model.add_continuous(-5, 5, "y");
  model.add_constraint({{x, 1.0}, {y, 1.0}}, oi::Relation::GreaterEq, -3.0);
  model.set_objective({{x, 1.0}, {y, 1.0}}, oi::Sense::Minimize);
  const auto result = oi::solve_lp(model);
  ASSERT_EQ(result.status, oi::LpStatus::Optimal);
  EXPECT_NEAR(result.objective, -3.0, 1e-7);
}

TEST(Simplex, DegenerateDuplicateConstraints) {
  oi::Model model;
  const auto x = model.add_continuous(0, 10, "x");
  for (int i = 0; i < 4; ++i) {
    model.add_constraint({{x, 1.0}}, oi::Relation::LessEq, 5.0);
  }
  model.add_constraint({{x, 1.0}}, oi::Relation::Equal, 5.0);
  model.set_objective({{x, -1.0}}, oi::Sense::Minimize);
  const auto result = oi::solve_lp(model);
  ASSERT_EQ(result.status, oi::LpStatus::Optimal);
  EXPECT_NEAR(result.values[x], 5.0, 1e-7);
}

TEST(Simplex, BoundsOverride) {
  oi::Model model;
  const auto x = model.add_continuous(0, 10, "x");
  model.set_objective({{x, -1.0}}, oi::Sense::Minimize);  // maximize x
  const auto base = oi::solve_lp(model);
  EXPECT_NEAR(base.values[x], 10.0, 1e-7);
  const auto fixed = oi::solve_lp_with_bounds(model, {3.0}, {3.0});
  ASSERT_EQ(fixed.status, oi::LpStatus::Optimal);
  EXPECT_NEAR(fixed.values[x], 3.0, 1e-9);
  const auto crossed = oi::solve_lp_with_bounds(model, {4.0}, {3.0});
  EXPECT_EQ(crossed.status, oi::LpStatus::Infeasible);
}

TEST(Bnb, SmallKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 -> {a,c} wait: a+c w=5 v=17;
  // {b,c} w=6 v=20 <- optimum.
  oi::Model model;
  const auto a = model.add_binary("a");
  const auto b = model.add_binary("b");
  const auto c = model.add_binary("c");
  model.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, oi::Relation::LessEq,
                       6.0);
  model.set_objective({{a, 10.0}, {b, 13.0}, {c, 7.0}}, oi::Sense::Maximize);
  const auto result = oi::solve_mip(model);
  ASSERT_EQ(result.status, oi::MipStatus::Optimal);
  EXPECT_NEAR(result.objective, 20.0, 1e-7);
  EXPECT_NEAR(result.values[a], 0.0, 1e-9);
  EXPECT_NEAR(result.values[b], 1.0, 1e-9);
  EXPECT_NEAR(result.values[c], 1.0, 1e-9);
}

TEST(Bnb, InfeasibleIntegerProblem) {
  // 2x = 3 with x integer in [0, 5]: LP feasible, MIP infeasible.
  oi::Model model;
  const auto x = model.add_variable(0, 5, true, "x");
  model.add_constraint({{x, 2.0}}, oi::Relation::Equal, 3.0);
  model.set_objective({{x, 1.0}}, oi::Sense::Minimize);
  EXPECT_EQ(oi::solve_mip(model).status, oi::MipStatus::Infeasible);
}

TEST(Bnb, GeneralIntegerVariables) {
  // min x + y s.t. 3x + 2y >= 12, x,y integer >= 0 -> (4,0)->12? obj 4;
  // (2,3) obj 5; (0,6) obj 6; best obj 4 at x=4.
  oi::Model model;
  const auto x = model.add_variable(0, 10, true, "x");
  const auto y = model.add_variable(0, 10, true, "y");
  model.add_constraint({{x, 3.0}, {y, 2.0}}, oi::Relation::GreaterEq, 12.0);
  model.set_objective({{x, 1.0}, {y, 1.0}}, oi::Sense::Minimize);
  const auto result = oi::solve_mip(model);
  ASSERT_EQ(result.status, oi::MipStatus::Optimal);
  EXPECT_NEAR(result.objective, 4.0, 1e-7);
}

TEST(Bnb, MixedIntegerContinuous) {
  // max 2b + z s.t. b binary, z in [0, 1.5], b + z <= 2 -> b=1, z=1 ->
  // wait z <= 1.5 and b + z <= 2 -> z = 1.0? b=1 -> z <= 1 -> obj 3.
  oi::Model model;
  const auto b = model.add_binary("b");
  const auto z = model.add_continuous(0, 1.5, "z");
  model.add_constraint({{b, 1.0}, {z, 1.0}}, oi::Relation::LessEq, 2.0);
  model.set_objective({{b, 2.0}, {z, 1.0}}, oi::Sense::Maximize);
  const auto result = oi::solve_mip(model);
  ASSERT_EQ(result.status, oi::MipStatus::Optimal);
  EXPECT_NEAR(result.objective, 3.0, 1e-7);
  EXPECT_NEAR(result.values[b], 1.0, 1e-9);
  EXPECT_NEAR(result.values[z], 1.0, 1e-7);
}

TEST(Bnb, McCormickLinearization) {
  // y = a*b via y <= a, y <= b, y >= a + b - 1 for binaries. Minimizing
  // 10y - 3a - 3b drives a = b = 1 only if the product penalty (10) is
  // outweighed... -3-3+10 = +4 > 0, so optimum picks exactly one of a, b:
  // obj -3.
  oi::Model model;
  const auto a = model.add_binary("a");
  const auto b = model.add_binary("b");
  const auto y = model.add_continuous(0, 1, "y");
  model.add_constraint({{y, 1.0}, {a, -1.0}}, oi::Relation::LessEq, 0.0);
  model.add_constraint({{y, 1.0}, {b, -1.0}}, oi::Relation::LessEq, 0.0);
  model.add_constraint({{y, 1.0}, {a, -1.0}, {b, -1.0}},
                       oi::Relation::GreaterEq, -1.0);
  model.set_objective({{y, 10.0}, {a, -3.0}, {b, -3.0}}, oi::Sense::Minimize);
  const auto result = oi::solve_mip(model);
  ASSERT_EQ(result.status, oi::MipStatus::Optimal);
  EXPECT_NEAR(result.objective, -3.0, 1e-7);
  // And with a, b forced on, y must be 1 (the product).
  oi::Model forced = model;
  forced.add_constraint({{a, 1.0}}, oi::Relation::Equal, 1.0);
  forced.add_constraint({{b, 1.0}}, oi::Relation::Equal, 1.0);
  const auto result2 = oi::solve_mip(forced);
  ASSERT_EQ(result2.status, oi::MipStatus::Optimal);
  EXPECT_NEAR(result2.values[y], 1.0, 1e-7);
}

TEST(Bnb, TimeLimitReportsIncumbentOrTimeout) {
  // A 22-item knapsack with correlated weights is slow enough to trip a
  // microscopic deadline but still returns a defensible status.
  operon::util::Rng rng(55);
  oi::Model model;
  oi::LinearExpr weight, value;
  for (int i = 0; i < 22; ++i) {
    const auto v = model.add_binary();
    const double w = 10.0 + rng.uniform(0.0, 1.0);
    weight.push_back({v, w});
    value.push_back({v, w + rng.uniform(0.0, 0.1)});
  }
  model.add_constraint(weight, oi::Relation::LessEq, 110.0);
  model.set_objective(value, oi::Sense::Maximize);
  oi::MipOptions options;
  options.time_limit_s = 1e-6;
  const auto result = oi::solve_mip(model, options);
  EXPECT_EQ(result.status, oi::MipStatus::TimeLimit);
}

TEST(Bnb, NodeLimit) {
  oi::Model model;
  oi::LinearExpr obj;
  for (int i = 0; i < 16; ++i) {
    const auto v = model.add_binary();
    obj.push_back({v, 1.0 + 0.01 * i});
  }
  oi::LinearExpr sum = obj;
  for (auto& t : sum) t.coeff = 1.0;
  model.add_constraint(sum, oi::Relation::Equal, 8.0);
  model.set_objective(obj, oi::Sense::Minimize);
  oi::MipOptions options;
  options.max_nodes = 1;
  const auto result = oi::solve_mip(model, options);
  EXPECT_TRUE(result.status == oi::MipStatus::NodeLimit ||
              result.status == oi::MipStatus::Optimal);
  EXPECT_LE(result.nodes_explored, 1u);
}

// Property: random 0-1 knapsacks match exhaustive enumeration.
TEST(BnbProperty, RandomKnapsacksMatchBruteForce) {
  operon::util::Rng rng(808);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 10;
    std::vector<double> w(n), v(n);
    for (int i = 0; i < n; ++i) {
      w[i] = rng.uniform(1.0, 9.0);
      v[i] = rng.uniform(1.0, 9.0);
    }
    const double budget = rng.uniform(10.0, 25.0);

    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double tw = 0.0, tv = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) {
          tw += w[i];
          tv += v[i];
        }
      }
      if (tw <= budget) best = std::max(best, tv);
    }

    oi::Model model;
    oi::LinearExpr weight, value;
    for (int i = 0; i < n; ++i) {
      const auto var = model.add_binary();
      weight.push_back({var, w[i]});
      value.push_back({var, v[i]});
    }
    model.add_constraint(weight, oi::Relation::LessEq, budget);
    model.set_objective(value, oi::Sense::Maximize);
    const auto result = oi::solve_mip(model);
    ASSERT_EQ(result.status, oi::MipStatus::Optimal);
    EXPECT_NEAR(result.objective, best, 1e-6) << "trial " << trial;
    EXPECT_TRUE(model.is_feasible(result.values));
  }
}

// Property: one-hot selection problems (the OPERON structure) solve to
// the per-group minimum when unconstrained.
TEST(BnbProperty, OneHotSelection) {
  operon::util::Rng rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    oi::Model model;
    oi::LinearExpr obj;
    double expected = 0.0;
    for (int g = 0; g < 6; ++g) {
      oi::LinearExpr onehot;
      double group_min = 1e18;
      for (int j = 0; j < 4; ++j) {
        const auto var = model.add_binary();
        const double cost = rng.uniform(1.0, 20.0);
        obj.push_back({var, cost});
        onehot.push_back({var, 1.0});
        group_min = std::min(group_min, cost);
      }
      model.add_constraint(onehot, oi::Relation::Equal, 1.0);
      expected += group_min;
    }
    model.set_objective(obj, oi::Sense::Minimize);
    const auto result = oi::solve_mip(model);
    ASSERT_EQ(result.status, oi::MipStatus::Optimal);
    EXPECT_NEAR(result.objective, expected, 1e-6);
  }
}

namespace {

/// The correlated knapsack from TimeLimitReportsIncumbentOrTimeout,
/// rebuilt identically for determinism tests.
oi::Model correlated_knapsack(std::uint64_t seed) {
  operon::util::Rng rng(seed);
  oi::Model model;
  oi::LinearExpr weight, value;
  for (int i = 0; i < 22; ++i) {
    const auto v = model.add_binary();
    const double w = 10.0 + rng.uniform(0.0, 1.0);
    weight.push_back({v, w});
    value.push_back({v, w + rng.uniform(0.0, 0.1)});
  }
  model.add_constraint(weight, oi::Relation::LessEq, 110.0);
  model.set_objective(value, oi::Sense::Maximize);
  return model;
}

}  // namespace

TEST(Bnb, ExpiredDeadlineStillReturnsValidIncumbent) {
  const oi::Model model = correlated_knapsack(55);
  oi::MipOptions options;
  options.time_limit_s = 1e-9;  // expires before the first node completes
  const auto result = oi::solve_mip(model, options);
  EXPECT_EQ(result.status, oi::MipStatus::TimeLimit);
  if (result.has_incumbent) {
    EXPECT_TRUE(model.is_feasible(result.values));
    EXPECT_NEAR(model.evaluate_objective(result.values), result.objective,
                1e-9);
  }
}

TEST(Bnb, ExpiredDeadlineIsDeterministic) {
  // The search order is deterministic; only the wall-clock cut point can
  // vary. With an already-expired deadline there is nothing to cut, so
  // two runs must return bit-identical incumbents.
  oi::MipOptions options;
  options.time_limit_s = 1e-12;
  const auto a = oi::solve_mip(correlated_knapsack(77), options);
  const auto b = oi::solve_mip(correlated_knapsack(77), options);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.has_incumbent, b.has_incumbent);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.values, b.values);
}

TEST(Bnb, NodeLimitCutIsDeterministic) {
  // A node budget is a deterministic cut: identical runs explore the
  // identical tree prefix and must return the identical incumbent.
  oi::MipOptions options;
  options.max_nodes = 25;
  const auto a = oi::solve_mip(correlated_knapsack(91), options);
  const auto b = oi::solve_mip(correlated_knapsack(91), options);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.values, b.values);
}
