// Tests for solution determination: the evaluator's crossing math, the
// exact branch-and-bound (cross-checked against the literal Formulation-3
// MIP and brute force), the §3.3 variable reduction, and time-limit
// semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "codesign/selection.hpp"
#include "util/rng.hpp"

namespace oc = operon::codesign;
namespace om = operon::model;
namespace og = operon::geom;

namespace {

const om::TechParams kParams = om::TechParams::dac18_defaults();

/// Parallel horizontal buses source-left, sink-right; optical baselines
/// of different nets do not cross (parallel), so interactions exist only
/// via bbox overlap.
om::Design parallel_buses(std::size_t groups, double pitch,
                          std::uint64_t seed) {
  operon::util::Rng rng(seed);
  om::Design design;
  design.name = "parallel";
  design.chip = og::BBox::of({0, 0}, {20000, 20000});
  for (std::size_t g = 0; g < groups; ++g) {
    om::SignalGroup group;
    group.name = "g" + std::to_string(g);
    const double y = 1000.0 + pitch * static_cast<double>(g);
    for (int b = 0; b < 8; ++b) {
      om::SignalBit bit;
      bit.source = {{1000.0 + rng.uniform(0, 50), y + rng.uniform(0, 50)},
                    om::PinRole::Source};
      bit.sinks.push_back(
          {{15000.0 + rng.uniform(0, 50), y + rng.uniform(0, 50)},
           om::PinRole::Sink});
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  }
  // Wide-pitch fixtures push buses past the nominal outline; grow the
  // chip to keep every pin legal (the outline only matters to validate()).
  for (const om::SignalGroup& group : design.groups) {
    design.chip.expand(group.bbox());
  }
  return design;
}

/// A crossing mesh: half the buses run left-to-right, half bottom-to-top,
/// so optical routes must cross.
om::Design crossing_mesh(std::size_t per_direction, std::uint64_t seed) {
  operon::util::Rng rng(seed);
  om::Design design;
  design.name = "mesh";
  design.chip = og::BBox::of({0, 0}, {20000, 20000});
  const auto add_group = [&](const og::Point& src, const og::Point& dst,
                             std::size_t id) {
    om::SignalGroup group;
    group.name = "m" + std::to_string(id);
    for (int b = 0; b < 8; ++b) {
      om::SignalBit bit;
      bit.source = {{src.x + rng.uniform(0, 50), src.y + rng.uniform(0, 50)},
                    om::PinRole::Source};
      bit.sinks.push_back(
          {{dst.x + rng.uniform(0, 50), dst.y + rng.uniform(0, 50)},
           om::PinRole::Sink});
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  };
  for (std::size_t k = 0; k < per_direction; ++k) {
    const double c = 4000.0 + 2500.0 * static_cast<double>(k);
    add_group({1000, c}, {19000, c}, 2 * k);        // horizontal
    add_group({c, 1000}, {c, 19000}, 2 * k + 1);    // vertical
  }
  return design;
}

std::vector<oc::CandidateSet> candidates_for(const om::Design& design,
                                             const om::TechParams& params) {
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  return oc::generate_candidates(design, nets.hyper_nets, params);
}

}  // namespace

TEST(Evaluator, InteractionListRespectsBBoxes) {
  // Far-apart buses: with variable reduction, no interactions.
  const auto sets = candidates_for(parallel_buses(4, 5000.0, 1), kParams);
  oc::SelectionEvaluator reduced(sets, kParams, /*interact_all=*/false);
  oc::SelectionEvaluator full(sets, kParams, /*interact_all=*/true);
  EXPECT_LT(reduced.num_interacting_pairs(), full.num_interacting_pairs());
  EXPECT_EQ(full.num_interacting_pairs(), 4u * 3u / 2u);
}

TEST(Evaluator, AllElectricalIsCleanAndExpensive) {
  const auto sets = candidates_for(parallel_buses(3, 600.0, 2), kParams);
  oc::SelectionEvaluator evaluator(sets, kParams);
  const auto electrical = evaluator.all_electrical();
  EXPECT_TRUE(evaluator.violations(electrical).clean());
  const auto min_power = evaluator.min_power_selection();
  EXPECT_LT(evaluator.total_power(min_power),
            evaluator.total_power(electrical));
  EXPECT_DOUBLE_EQ(evaluator.power_lower_bound(),
                   evaluator.total_power(min_power));
}

TEST(Evaluator, CrossingCountsSymmetricInMesh) {
  const auto sets = candidates_for(crossing_mesh(2, 3), kParams);
  oc::SelectionEvaluator evaluator(sets, kParams);
  // Find a horizontal/vertical pair and check that selected optical
  // candidates actually cross.
  const auto selection = evaluator.min_power_selection();
  std::size_t crossing_pairs = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (std::size_t m : evaluator.interacting(i)) {
      if (m <= i) continue;
      const auto& counts = evaluator.crossings(i, selection[i], m, selection[m]);
      for (int c : counts) {
        if (c > 0) ++crossing_pairs;
      }
    }
  }
  EXPECT_GT(crossing_pairs, 0u);
}

// Regression for the once-asymmetric cheap rejection in crossings():
// whether a pair of candidates can cross must not depend on the query
// direction. Totals are compared as presence (a geometric crossing is
// counted once per *path* traversing it, so the raw sums may differ
// between directions, but zero/non-zero must agree).
TEST(Evaluator, CrossingRejectionIsSymmetric) {
  const auto sets = candidates_for(crossing_mesh(2, 3), kParams);
  oc::SelectionEvaluator evaluator(sets, kParams);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (std::size_t m : evaluator.interacting(i)) {
      if (m <= i) continue;
      for (std::size_t ci = 0; ci < sets[i].options.size(); ++ci) {
        for (std::size_t cm = 0; cm < sets[m].options.size(); ++cm) {
          const auto forward = evaluator.crossings(i, ci, m, cm);
          const auto reverse = evaluator.crossings(m, cm, i, ci);
          long long forward_total = 0, reverse_total = 0;
          for (int c : forward) forward_total += c;
          for (int c : reverse) reverse_total += c;
          EXPECT_EQ(forward_total > 0, reverse_total > 0)
              << "i=" << i << " ci=" << ci << " m=" << m << " cm=" << cm;
          if (forward_total > 0) ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 0u) << "mesh produced no crossing pairs to check";
}

TEST(ExactSelect, NoInteractionsPicksPerNetMin) {
  const auto sets = candidates_for(parallel_buses(5, 4000.0, 4), kParams);
  oc::SelectionEvaluator evaluator(sets, kParams);
  const auto result = oc::solve_selection_exact(sets, kParams);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_FALSE(result.timed_out);
  EXPECT_TRUE(result.violations.clean());
  EXPECT_NEAR(result.power_pj, evaluator.power_lower_bound(), 1e-9);
}

TEST(ExactSelect, MatchesLiteralMipOnMesh) {
  const auto sets = candidates_for(crossing_mesh(2, 5), kParams);
  const auto exact = oc::solve_selection_exact(sets, kParams);
  const auto mip = oc::solve_selection_mip(sets, kParams);
  ASSERT_TRUE(exact.proven_optimal);
  ASSERT_TRUE(mip.proven_optimal);
  EXPECT_NEAR(exact.power_pj, mip.power_pj, 1e-6);
  EXPECT_TRUE(exact.violations.clean());
  EXPECT_TRUE(mip.violations.clean());
}

TEST(ExactSelect, MatchesBruteForceSmall) {
  // 3 mesh nets: enumerate all selections and compare.
  const auto sets = candidates_for(crossing_mesh(2, 6), kParams);
  ASSERT_LE(sets.size(), 4u);
  oc::SelectionEvaluator evaluator(sets, kParams);

  // Brute force over the candidate cross product.
  oc::Selection current(sets.size(), 0);
  double best = 1e18;
  const std::function<void(std::size_t)> recurse = [&](std::size_t i) {
    if (i == sets.size()) {
      if (evaluator.violations(current).clean()) {
        best = std::min(best, evaluator.total_power(current));
      }
      return;
    }
    for (std::size_t c = 0; c < sets[i].options.size(); ++c) {
      current[i] = c;
      recurse(i + 1);
    }
  };
  recurse(0);

  const auto exact = oc::solve_selection_exact(sets, kParams);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_NEAR(exact.power_pj, best, 1e-6);
}

TEST(ExactSelect, TightLossForcesFallbacks) {
  om::TechParams tight = kParams;
  tight.optical.max_loss_db = 2.3;  // barely one 1.4 cm span, no crossing
  const auto sets = candidates_for(crossing_mesh(3, 7), tight);
  const auto result = oc::solve_selection_exact(sets, tight);
  EXPECT_TRUE(result.violations.clean());
  // Some nets must have stepped off the pure min-power (all-optical) pick.
  oc::SelectionEvaluator evaluator(sets, tight);
  EXPECT_GE(result.power_pj, evaluator.power_lower_bound());
}

TEST(ExactSelect, TimeLimitReturnsFeasibleIncumbent) {
  const auto sets = candidates_for(crossing_mesh(4, 8), kParams);
  oc::SelectOptions options;
  options.time_limit_s = 1e-9;
  const auto result = oc::solve_selection_exact(sets, kParams, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.proven_optimal);
  // The incumbent must still be a complete, feasible selection.
  ASSERT_EQ(result.selection.size(), sets.size());
  EXPECT_TRUE(result.violations.clean());
}

TEST(ExactSelect, VariableReductionPreservesOptimum) {
  const auto sets = candidates_for(crossing_mesh(2, 9), kParams);
  oc::SelectOptions reduced;
  reduced.reduce_variables = true;
  oc::SelectOptions full;
  full.reduce_variables = false;
  const auto a = oc::solve_selection_exact(sets, kParams, reduced);
  const auto b = oc::solve_selection_exact(sets, kParams, full);
  ASSERT_TRUE(a.proven_optimal);
  ASSERT_TRUE(b.proven_optimal);
  EXPECT_NEAR(a.power_pj, b.power_pj, 1e-6);
  EXPECT_LE(a.num_components, sets.size());
}

TEST(ExactSelect, ComponentsReported) {
  const auto sets = candidates_for(parallel_buses(6, 4000.0, 10), kParams);
  const auto result = oc::solve_selection_exact(sets, kParams);
  EXPECT_GE(result.num_components, 1u);
  EXPECT_GE(result.largest_component, 1u);
  EXPECT_GT(result.nodes_explored, 0u);
}

// CLAUDE.md gotcha, promoted to a tested contract: an EMPTY vector from
// crossings() means "all zeros", and every public consumer must treat
// the marker and an explicit zero vector identically. Verified in three
// layers: (a) the marker is truthful against a from-scratch geometric
// recount; (b) path_loss_db / violations match a reference that always
// materializes explicit vectors; (c) the ILP linearization introduces a
// McCormick product exactly for the pairs whose explicit counts are
// non-zero — zero entries and the empty marker are elided identically.
TEST(Evaluator, EmptyCrossingsMeansAllZerosContract) {
  const auto sets = candidates_for(crossing_mesh(2, 12), kParams);
  oc::SelectionEvaluator evaluator(sets, kParams);
  const double beta = kParams.optical.beta_db_per_crossing;

  const auto explicit_counts = [&](std::size_t i, std::size_t ci,
                                   std::size_t m, std::size_t cm) {
    const oc::Candidate& mine = sets[i].options[ci];
    const oc::Candidate& other = sets[m].options[cm];
    std::vector<int> counts(mine.paths.size(), 0);
    for (std::size_t p = 0; p < mine.paths.size(); ++p) {
      counts[p] = static_cast<int>(og::count_crossings(
          mine.paths[p].segments, other.optical_segments));
    }
    return counts;
  };

  // (a) The marker is truthful, and non-elided vectors are exact.
  std::size_t empty_markers = 0, explicit_vectors = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (std::size_t m : evaluator.interacting(i)) {
      for (std::size_t ci = 0; ci < sets[i].options.size(); ++ci) {
        for (std::size_t cm = 0; cm < sets[m].options.size(); ++cm) {
          const auto cached = evaluator.crossings(i, ci, m, cm);
          const auto full = explicit_counts(i, ci, m, cm);
          if (cached.empty()) {
            ++empty_markers;
            for (int c : full) EXPECT_EQ(c, 0);
          } else {
            ++explicit_vectors;
            EXPECT_EQ(std::vector<int>(cached.begin(), cached.end()), full);
          }
        }
      }
    }
  }
  // The property must be exercised from both sides.
  EXPECT_GT(empty_markers, 0u);
  EXPECT_GT(explicit_vectors, 0u);

  // (b) Consumers: losses computed with explicit vectors (empty treated
  // as zeros by construction) match path_loss_db / violations exactly.
  for (const auto& selection :
       {evaluator.min_power_selection(), evaluator.all_electrical()}) {
    std::size_t ref_violated = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      const oc::Candidate& cand = sets[i].options[selection[i]];
      for (std::size_t p = 0; p < cand.paths.size(); ++p) {
        double ref_loss = cand.paths[p].static_loss_db;
        for (std::size_t m : evaluator.interacting(i)) {
          ref_loss +=
              beta * explicit_counts(i, selection[i], m, selection[m])[p];
        }
        EXPECT_EQ(evaluator.path_loss_db(selection, i, selection[i], p),
                  ref_loss);
        if (ref_loss > kParams.optical.max_loss_db + 1e-9) ++ref_violated;
      }
    }
    EXPECT_EQ(evaluator.violations(selection).violated_paths, ref_violated);
  }

  // (c) ILP linearization: products exist exactly for candidate pairs
  // with a non-zero explicit count in either direction.
  const auto mip = oc::build_selection_mip(evaluator);
  std::size_t binaries = 0;
  for (std::size_t v = 0; v < mip.model.num_variables(); ++v) {
    if (mip.model.variable(v).integral) ++binaries;
  }
  std::set<std::pair<std::size_t, std::size_t>> crossing_pairs;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (std::size_t m : evaluator.interacting(i)) {
      for (std::size_t ci = 0; ci < sets[i].options.size(); ++ci) {
        for (std::size_t cm = 0; cm < sets[m].options.size(); ++cm) {
          const auto counts = explicit_counts(i, ci, m, cm);
          if (std::any_of(counts.begin(), counts.end(),
                          [](int c) { return c != 0; })) {
            const std::size_t va = mip.selection_vars[i][ci];
            const std::size_t vb = mip.selection_vars[m][cm];
            crossing_pairs.insert({std::min(va, vb), std::max(va, vb)});
          }
        }
      }
    }
  }
  EXPECT_EQ(mip.model.num_variables() - binaries, crossing_pairs.size());
}

TEST(MipBuilder, StructureMatchesFormulation3) {
  const auto sets = candidates_for(crossing_mesh(2, 11), kParams);
  oc::SelectionEvaluator evaluator(sets, kParams);
  const auto mip = oc::build_selection_mip(evaluator);
  // One binary per candidate; one-hot rows exist for every net.
  std::size_t binaries = 0;
  for (std::size_t v = 0; v < mip.model.num_variables(); ++v) {
    if (mip.model.variable(v).integral) ++binaries;
  }
  std::size_t expected = 0;
  for (const auto& set : sets) expected += set.options.size();
  EXPECT_EQ(binaries, expected);
  EXPECT_GE(mip.model.num_constraints(), sets.size());
  mip.model.validate();
}
