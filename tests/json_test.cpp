// Tests for the JSON writer: structure, escaping, number formatting,
// misuse detection.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/json.hpp"

namespace ou = operon::util;

TEST(Json, FlatObject) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("name").value("operon");
  json.key("power").value(12.5);
  json.key("nets").value(std::int64_t{42});
  json.key("ok").value(true);
  json.key("missing").null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"operon","power":12.5,"nets":42,"ok":true,"missing":null})");
}

TEST(Json, NestedArraysAndObjects) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("rows").begin_array();
  json.begin_object().key("id").value(1).end_object();
  json.begin_object().key("id").value(2).end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"rows":[{"id":1},{"id":2}]})");
}

TEST(Json, ArrayOfNumbers) {
  ou::JsonWriter json;
  json.begin_array();
  json.value(1).value(2).value(3);
  json.end_array();
  EXPECT_EQ(json.str(), "[1,2,3]");
}

TEST(Json, EscapesStrings) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("text").value("a \"b\"\n\tc\\d");
  json.end_object();
  EXPECT_EQ(json.str(), R"({"text":"a \"b\"\n\tc\\d"})");
}

TEST(Json, NonFiniteBecomesNull) {
  ou::JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, EmptyContainers) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("a").begin_array().end_array();
  json.key("o").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":[],"o":{}})");
}

TEST(Json, MisuseDetected) {
  {
    ou::JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), ou::CheckError);
  }
  {
    ou::JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), ou::CheckError);
  }
  {
    ou::JsonWriter json;
    json.begin_object();
    json.key("a");
    EXPECT_THROW(json.key("b"), ou::CheckError);
  }
  {
    ou::JsonWriter json;
    json.begin_object();
    EXPECT_FALSE(json.complete());
    EXPECT_THROW(json.str(), ou::CheckError);
  }
}

// -- strict parser --------------------------------------------------------

TEST(JsonParse, ScalarsAndContainers) {
  EXPECT_EQ(ou::parse_json("null").type(), ou::JsonType::Null);
  EXPECT_TRUE(ou::parse_json("true").as_bool());
  EXPECT_FALSE(ou::parse_json(" false ").as_bool());
  EXPECT_DOUBLE_EQ(ou::parse_json("-12.5e-1").as_number(), -1.25);
  EXPECT_EQ(ou::parse_json(R"("hi\nthere")").as_string(), "hi\nthere");
  const ou::JsonValue arr = ou::parse_json("[1,2,3]");
  ASSERT_EQ(arr.items().size(), 3u);
  EXPECT_DOUBLE_EQ(arr.at(std::size_t{2}).as_number(), 3.0);
  const ou::JsonValue obj = ou::parse_json(R"({"a":1,"b":[true,null]})");
  EXPECT_DOUBLE_EQ(obj.at("a").as_number(), 1.0);
  EXPECT_EQ(obj.at("b").items().size(), 2u);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(ou::parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(ou::parse_json(R"("A\u00e9")").as_string(), "A\xc3\xa9");
  EXPECT_THROW(ou::parse_json(R"("\uZZZZ")"), ou::CheckError);
}

TEST(JsonParse, ObjectOrderPreservedAndRoundTripStable) {
  const std::string doc = R"({"z":1,"a":[2.5,{"k":"v"}],"m":null})";
  const std::string once = ou::write_json(ou::parse_json(doc));
  EXPECT_EQ(once, doc);
  EXPECT_EQ(ou::write_json(ou::parse_json(once)), once);
}

TEST(JsonParse, DuplicateKeysRejected) {
  EXPECT_THROW(ou::parse_json(R"({"a":1,"a":2})"), ou::CheckError);
  EXPECT_THROW(ou::parse_json(R"({"a":{"b":1,"b":2}})"), ou::CheckError);
}

TEST(JsonParse, NonFiniteLiteralsRejected) {
  EXPECT_THROW(ou::parse_json("NaN"), ou::CheckError);
  EXPECT_THROW(ou::parse_json("Infinity"), ou::CheckError);
  EXPECT_THROW(ou::parse_json("-Infinity"), ou::CheckError);
  EXPECT_THROW(ou::parse_json(R"({"x":NaN})"), ou::CheckError);
  EXPECT_THROW(ou::parse_json("1e999999"), ou::CheckError);  // overflows
}

TEST(JsonParse, TrailingJunkRejected) {
  EXPECT_THROW(ou::parse_json("{} {}"), ou::CheckError);
  EXPECT_THROW(ou::parse_json("1,2"), ou::CheckError);
  EXPECT_THROW(ou::parse_json("[1]x"), ou::CheckError);
}

TEST(JsonParse, EveryTruncationRejected) {
  const std::string doc =
      R"({"design":"d","chip":[0,0,1,1],"groups":[{"name":"g","bits":[]}]})";
  ASSERT_NO_THROW(ou::parse_json(doc));
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW(ou::parse_json(doc.substr(0, len)), ou::CheckError)
        << "prefix length " << len;
  }
}

TEST(JsonParse, StrictNumberGrammar) {
  EXPECT_THROW(ou::parse_json("01"), ou::CheckError);    // leading zero
  EXPECT_THROW(ou::parse_json("+1"), ou::CheckError);    // leading plus
  EXPECT_THROW(ou::parse_json(".5"), ou::CheckError);    // bare fraction
  EXPECT_THROW(ou::parse_json("1."), ou::CheckError);    // empty fraction
  EXPECT_THROW(ou::parse_json("1e"), ou::CheckError);    // empty exponent
  EXPECT_DOUBLE_EQ(ou::parse_json("-0.5e+2").as_number(), -50.0);
}

TEST(JsonParse, DepthCapRejectsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += '[';
  for (int i = 0; i < 500; ++i) deep += ']';
  EXPECT_THROW(ou::parse_json(deep), ou::CheckError);
  ou::JsonParseOptions loose;
  loose.max_depth = 1000;
  EXPECT_NO_THROW(ou::parse_json(deep, loose));
}

TEST(JsonParse, BadEscapesAndControlCharsRejected) {
  EXPECT_THROW(ou::parse_json(R"("\x41")"), ou::CheckError);
  EXPECT_THROW(ou::parse_json("\"unterminated"), ou::CheckError);
  EXPECT_THROW(ou::parse_json(std::string("\"a\nb\""), {}), ou::CheckError);
}

// -- design JSON round trip ----------------------------------------------

#include "benchgen/benchgen.hpp"
#include "model/design_json.hpp"
#include "model/diagnostic.hpp"

namespace om = operon::model;

TEST(DesignJson, RoundTripByteIdenticalOnEveryTable1Case) {
  for (const std::string& id : operon::benchgen::table1_cases()) {
    SCOPED_TRACE(id);
    const om::Design design = operon::benchgen::generate_benchmark(
        operon::benchgen::table1_spec(id));
    const std::string first = om::design_to_json(design);
    // serialize -> parse -> serialize must be byte-identical, both via
    // the typed reader and via the generic JSON value round trip.
    const om::Design reparsed = om::design_from_json(first);
    EXPECT_EQ(om::design_to_json(reparsed), first);
    EXPECT_EQ(ou::write_json(ou::parse_json(first)), first);
  }
}

TEST(DesignJson, ParsedDesignMatchesOriginal) {
  const om::Design design = operon::benchgen::generate_benchmark(
      operon::benchgen::table1_spec("I1"));
  const om::Design reparsed = om::design_from_json(om::design_to_json(design));
  EXPECT_EQ(reparsed.name, design.name);
  ASSERT_EQ(reparsed.groups.size(), design.groups.size());
  EXPECT_EQ(reparsed.num_bits(), design.num_bits());
  EXPECT_EQ(reparsed.num_pins(), design.num_pins());
  EXPECT_EQ(reparsed.chip, design.chip);
  // Pin roles are reconstructed from position in the schema.
  EXPECT_FALSE(om::has_errors(om::validate(reparsed)));
}

TEST(DesignJson, MalformedShapesRejected) {
  EXPECT_THROW(om::design_from_json("[]"), ou::CheckError);
  EXPECT_THROW(om::design_from_json(R"({"design":"d"})"), ou::CheckError);
  EXPECT_THROW(om::design_from_json(
                   R"({"design":"d","chip":[0,0,1],"groups":[]})"),
               ou::CheckError);
  EXPECT_THROW(
      om::design_from_json(
          R"({"design":"d","chip":[0,0,1,1],"groups":[{"name":"g","bits":)"
          R"([{"source":[1],"sinks":[]}]}]})"),
      ou::CheckError);
}
