// Tests for the JSON writer: structure, escaping, number formatting,
// misuse detection.

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/json.hpp"

namespace ou = operon::util;

TEST(Json, FlatObject) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("name").value("operon");
  json.key("power").value(12.5);
  json.key("nets").value(std::int64_t{42});
  json.key("ok").value(true);
  json.key("missing").null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"operon","power":12.5,"nets":42,"ok":true,"missing":null})");
}

TEST(Json, NestedArraysAndObjects) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("rows").begin_array();
  json.begin_object().key("id").value(1).end_object();
  json.begin_object().key("id").value(2).end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"rows":[{"id":1},{"id":2}]})");
}

TEST(Json, ArrayOfNumbers) {
  ou::JsonWriter json;
  json.begin_array();
  json.value(1).value(2).value(3);
  json.end_array();
  EXPECT_EQ(json.str(), "[1,2,3]");
}

TEST(Json, EscapesStrings) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("text").value("a \"b\"\n\tc\\d");
  json.end_object();
  EXPECT_EQ(json.str(), R"({"text":"a \"b\"\n\tc\\d"})");
}

TEST(Json, NonFiniteBecomesNull) {
  ou::JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, EmptyContainers) {
  ou::JsonWriter json;
  json.begin_object();
  json.key("a").begin_array().end_array();
  json.key("o").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":[],"o":{}})");
}

TEST(Json, MisuseDetected) {
  {
    ou::JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), ou::CheckError);
  }
  {
    ou::JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("k"), ou::CheckError);
  }
  {
    ou::JsonWriter json;
    json.begin_object();
    json.key("a");
    EXPECT_THROW(json.key("b"), ou::CheckError);
  }
  {
    ou::JsonWriter json;
    json.begin_object();
    EXPECT_FALSE(json.complete());
    EXPECT_THROW(json.str(), ou::CheckError);
  }
}
