// Serve daemon core suite: deterministic fair-share queue order, the
// ledger-backed result cache (dedup, cacheability policy, warm
// priming), the single-writer ledger append point under a many-thread
// hammer, and the Server job lifecycle (submit/status/result/cancel,
// backpressure, drain) through the in-process handle() API.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/ledger.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/stop.hpp"

namespace os = operon::serve;
namespace oo = operon::obs;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

os::QueuedJob queued(std::uint64_t id, const std::string& tenant,
                     int priority, std::uint64_t sequence) {
  os::QueuedJob job;
  job.id = id;
  job.tenant = tenant;
  job.priority = priority;
  job.sequence = sequence;
  return job;
}

std::vector<std::uint64_t> drain_ids(os::FairQueue& queue) {
  std::vector<std::uint64_t> ids;
  os::QueuedJob job;
  while (queue.pop(&job)) ids.push_back(job.id);
  return ids;
}

/// A tiny custom-generator job spec (sub-second compute).
os::JobSpec tiny_spec(std::uint64_t seed) {
  os::JobSpec spec;
  spec.groups = 4;
  spec.bits_lo = 2;
  spec.bits_hi = 4;
  spec.seed = seed;
  spec.ilp_limit_s = 5.0;
  return spec;
}

os::Request submit_request(const os::JobSpec& spec, bool wait) {
  os::Request request;
  request.op = os::Op::Submit;
  request.spec = spec;
  request.wait = wait;
  return request;
}

os::Request job_request(os::Op op, std::uint64_t job, bool wait = false) {
  os::Request request;
  request.op = op;
  request.job = job;
  request.wait = wait;
  return request;
}

bool has_diag(const oo::LedgerRecord& record, const std::string& name) {
  for (const auto& [diag, count] : record.diagnostics) {
    if (diag == name && count > 0) return true;
  }
  return false;
}

// -- FairQueue -------------------------------------------------------------

TEST(FairQueue, PriorityClassBeatsEverything) {
  os::FairQueue queue(0);
  ASSERT_TRUE(queue.push(queued(1, "a", 0, 1)));
  ASSERT_TRUE(queue.push(queued(2, "a", 0, 2)));
  ASSERT_TRUE(queue.push(queued(3, "b", 5, 3)));
  ASSERT_TRUE(queue.push(queued(4, "a", 5, 4)));
  // Priority 5 first (tenant "a" and "b" both have 0 starts -> "a"
  // wins the name tie), then the priority-0 backlog in FIFO order.
  EXPECT_EQ(drain_ids(queue), (std::vector<std::uint64_t>{4, 3, 1, 2}));
}

TEST(FairQueue, FairShareRoundRobinsTenants) {
  os::FairQueue queue(0);
  // Tenant "hog" floods; tenant "meek" submits one job later.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(queue.push(queued(i, "hog", 0, i)));
  }
  ASSERT_TRUE(queue.push(queued(9, "meek", 0, 5)));
  // First pop goes to "hog" (0 starts each, name order); the moment
  // "hog" has one start and "meek" has none, "meek" runs next.
  EXPECT_EQ(drain_ids(queue), (std::vector<std::uint64_t>{1, 9, 2, 3, 4}));
}

TEST(FairQueue, PopOrderIsAPureFunctionOfHistory) {
  // Same pushes, interleaved pops: replays identically.
  for (int round = 0; round < 2; ++round) {
    os::FairQueue queue(0);
    ASSERT_TRUE(queue.push(queued(1, "b", 1, 1)));
    ASSERT_TRUE(queue.push(queued(2, "a", 1, 2)));
    os::QueuedJob job;
    ASSERT_TRUE(queue.pop(&job));
    EXPECT_EQ(job.id, 2u);  // same priority, same starts -> tenant "a"
    ASSERT_TRUE(queue.push(queued(3, "b", 9, 3)));
    ASSERT_TRUE(queue.pop(&job));
    EXPECT_EQ(job.id, 3u);  // the higher class jumps the fair share
    ASSERT_TRUE(queue.pop(&job));
    EXPECT_EQ(job.id, 1u);
    EXPECT_TRUE(queue.empty());
  }
}

TEST(FairQueue, CapacityBoundsAdmission) {
  os::FairQueue queue(2);
  EXPECT_TRUE(queue.push(queued(1, "a", 0, 1)));
  EXPECT_TRUE(queue.push(queued(2, "a", 0, 2)));
  EXPECT_FALSE(queue.push(queued(3, "a", 0, 3)));  // backpressure
  os::QueuedJob job;
  ASSERT_TRUE(queue.pop(&job));
  EXPECT_TRUE(queue.push(queued(3, "a", 0, 3)));  // slot freed
}

TEST(FairQueue, RemoveCancelsQueuedJob) {
  os::FairQueue queue(0);
  ASSERT_TRUE(queue.push(queued(1, "a", 0, 1)));
  ASSERT_TRUE(queue.push(queued(2, "a", 0, 2)));
  EXPECT_TRUE(queue.remove(1));
  EXPECT_FALSE(queue.remove(1));  // already gone
  EXPECT_EQ(drain_ids(queue), (std::vector<std::uint64_t>{2}));
}

// -- ResultCache -----------------------------------------------------------

oo::LedgerRecord record_for(const std::string& case_id, std::uint64_t seed,
                            std::uint64_t trip = 0) {
  oo::LedgerRecord record;
  record.case_id = case_id;
  record.seed = seed;
  record.options = "lr-0000000000000000";
  record.solver = "lr";
  record.trip_checkpoint = trip;
  return record;
}

TEST(ResultCache, OwnerFulfillThenHit) {
  os::ResultCache cache;
  oo::LedgerRecord out;
  EXPECT_FALSE(cache.lookup("k", 0, &out));
  ASSERT_EQ(cache.acquire("k", 0, &out), os::ResultCache::Outcome::Owner);
  cache.fulfill("k", record_for("I1", 1), /*cacheable=*/true);
  EXPECT_EQ(cache.acquire("k", 0, &out), os::ResultCache::Outcome::Hit);
  EXPECT_EQ(out.case_id, "I1");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, UncacheableOutcomeIsNeverServed) {
  os::ResultCache cache;
  oo::LedgerRecord out;
  ASSERT_EQ(cache.acquire("k", 0, &out), os::ResultCache::Outcome::Owner);
  cache.fulfill("k", record_for("I1", 1, /*trip=*/7), /*cacheable=*/false);
  EXPECT_FALSE(cache.lookup("k", 0, &out));
  // The next acquire owns and recomputes.
  EXPECT_EQ(cache.acquire("k", 0, &out), os::ResultCache::Outcome::Owner);
  cache.abandon("k");
}

TEST(ResultCache, TripMatchGatesWhatAStoredRecordServes) {
  // A stored deterministic-replay trip serves only requesters expecting
  // exactly that trip; everyone else recomputes (and overwrites).
  os::ResultCache cache;
  oo::LedgerRecord out;
  ASSERT_EQ(cache.acquire("k", 3, &out), os::ResultCache::Outcome::Owner);
  cache.fulfill("k", record_for("I1", 1, /*trip=*/3), /*cacheable=*/true);
  EXPECT_TRUE(cache.lookup("k", 3, &out));
  EXPECT_EQ(out.trip_checkpoint, 3u);
  EXPECT_FALSE(cache.lookup("k", 0, &out));
  EXPECT_FALSE(cache.lookup("k", 5, &out));
  // A mismatched acquire becomes the owner and may overwrite the slot.
  ASSERT_EQ(cache.acquire("k", 0, &out), os::ResultCache::Outcome::Owner);
  cache.fulfill("k", record_for("I1", 1, /*trip=*/0), /*cacheable=*/true);
  EXPECT_TRUE(cache.lookup("k", 0, &out));
  EXPECT_FALSE(cache.lookup("k", 3, &out));
}

TEST(ResultCache, WaiterBlocksUntilOwnerFulfills) {
  os::ResultCache cache;
  oo::LedgerRecord out;
  ASSERT_EQ(cache.acquire("k", 0, &out), os::ResultCache::Outcome::Owner);
  std::atomic<bool> got_hit{false};
  std::thread waiter([&] {
    oo::LedgerRecord hit;
    if (cache.acquire("k", 0, &hit) == os::ResultCache::Outcome::Hit &&
        hit.seed == 42) {
      got_hit.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got_hit.load());  // still blocked on the pending owner
  cache.fulfill("k", record_for("I1", 42), /*cacheable=*/true);
  waiter.join();
  EXPECT_TRUE(got_hit.load());
}

TEST(ResultCache, AbandonPromotesTheNextWaiterToOwner) {
  os::ResultCache cache;
  oo::LedgerRecord out;
  ASSERT_EQ(cache.acquire("k", 0, &out), os::ResultCache::Outcome::Owner);
  std::atomic<bool> became_owner{false};
  std::thread waiter([&] {
    oo::LedgerRecord hit;
    if (cache.acquire("k", 0, &hit) == os::ResultCache::Outcome::Owner) {
      became_owner.store(true);
      cache.abandon("k");
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.abandon("k");
  waiter.join();
  EXPECT_TRUE(became_owner.load());
}

TEST(ResultCache, PrimeFromLedgerGatesTripsAndSkipsMissingFiles) {
  const std::string path = temp_path("serve_prime.jsonl");
  std::remove(path.c_str());
  os::ResultCache empty_cache;
  EXPECT_EQ(empty_cache.prime_from_ledger(path), 0u);  // missing file

  oo::append_ledger_record(path, record_for("I1", 1));
  oo::append_ledger_record(path, record_for("I1", 2, /*trip=*/5));
  oo::append_ledger_record(path, record_for("I2", 3));
  // Same key as the first record, tripped: a completed run must not be
  // displaced by later trip history.
  oo::append_ledger_record(path, record_for("I1", 1, /*trip=*/2));
  os::ResultCache cache;
  EXPECT_EQ(cache.prime_from_ledger(path), 3u);
  oo::LedgerRecord out;
  // Clean records serve expected-trip 0; the kept clean record wins
  // over the later trip for its key.
  EXPECT_TRUE(cache.lookup(oo::ledger_key(record_for("I1", 1)), 0, &out));
  EXPECT_EQ(out.trip_checkpoint, 0u);
  // A primed trip serves ONLY a requester expecting that exact trip
  // (a stop_at_checkpoint replay — the trip is in its fingerprint).
  const std::string trip_key = oo::ledger_key(record_for("I1", 2, 5));
  EXPECT_FALSE(cache.lookup(trip_key, 0, &out));
  EXPECT_TRUE(cache.lookup(trip_key, 5, &out));
  std::remove(path.c_str());
}

// -- LedgerWriter ----------------------------------------------------------

TEST(LedgerWriter, ConcurrentAppendsNeverInterleaveLines) {
  // The satellite-4 regression: N threads hammer one writer; the file
  // must re-parse line-for-line (read_ledger throws on any malformed
  // or interleaved line).
  const std::string path = temp_path("serve_hammer.jsonl");
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  os::LedgerWriter writer(path);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        writer.append(record_for("hammer-" + std::to_string(t),
                                 static_cast<std::uint64_t>(i)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(writer.appended(), static_cast<std::size_t>(kThreads * kPerThread));
  const std::vector<oo::LedgerRecord> records = oo::read_ledger(path);
  EXPECT_EQ(records.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

TEST(LedgerWriter, EmptyPathDiscardsButCounts) {
  os::LedgerWriter writer("");
  writer.append(record_for("I1", 1));
  EXPECT_EQ(writer.appended(), 1u);
}

// -- Server ----------------------------------------------------------------

TEST(Server, SubmitWaitComputesAndCachesTheRecord) {
  const std::string path = temp_path("serve_server_basic.jsonl");
  std::remove(path.c_str());
  os::ServerConfig config;
  config.ledger_path = path;
  config.workers = 2;
  os::Server server(config);

  const os::Response first =
      server.handle(submit_request(tiny_spec(11), /*wait=*/true));
  ASSERT_TRUE(first.ok) << first.error << ": " << first.detail;
  EXPECT_EQ(first.state, "done");
  EXPECT_FALSE(first.cached);
  ASSERT_TRUE(first.has_record);
  EXPECT_EQ(first.record.case_id, "custom-g4-b2-4");
  EXPECT_EQ(first.record.seed, 11u);
  EXPECT_EQ(oo::ledger_key(first.record), first.key);

  const os::Response again =
      server.handle(submit_request(tiny_spec(11), /*wait=*/true));
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.cached);
  ASSERT_TRUE(again.has_record);
  EXPECT_TRUE(oo::semantic_equal(again.record, first.record));

  EXPECT_EQ(server.records_appended(), 1u);  // the hit recomputed nothing
  const oo::MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.counter("serve.cache.hit"), 1u);
  EXPECT_EQ(snapshot.counter("serve.cache.miss"), 1u);
  EXPECT_EQ(snapshot.counter("serve.submitted"), 2u);
  std::remove(path.c_str());
}

TEST(Server, RacedRunsAreCachedUnderTheSameTripRule) {
  // A portfolio race is deterministic, so its record is as cacheable as
  // any fixed-solver run: the resubmit must hit without recomputing,
  // and the stored record carries the race outcome fields.
  const std::string path = temp_path("serve_server_portfolio.jsonl");
  std::remove(path.c_str());
  os::ServerConfig config;
  config.ledger_path = path;
  config.workers = 2;
  os::Server server(config);

  os::JobSpec spec = tiny_spec(18);
  spec.solver = "portfolio";
  spec.portfolio_order = "lr,ilp-exact";
  const os::Response first =
      server.handle(submit_request(spec, /*wait=*/true));
  ASSERT_TRUE(first.ok) << first.error << ": " << first.detail;
  EXPECT_EQ(first.state, "done");
  EXPECT_FALSE(first.cached);
  ASSERT_TRUE(first.has_record);
  EXPECT_EQ(first.record.solver, "portfolio");
  EXPECT_EQ(first.record.trip_checkpoint, 0u);
  EXPECT_FALSE(first.record.winning_solver.empty());
  EXPECT_EQ(first.record.portfolio_order, "lr,ilp-exact");

  const os::Response again =
      server.handle(submit_request(spec, /*wait=*/true));
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.cached);
  ASSERT_TRUE(again.has_record);
  EXPECT_EQ(again.record.winning_solver, first.record.winning_solver);
  EXPECT_TRUE(oo::semantic_equal(again.record, first.record));
  EXPECT_EQ(server.records_appended(), 1u);
  std::remove(path.c_str());
}

TEST(Server, UnknownCaseIsAStructuredRejection) {
  os::ServerConfig config;
  os::Server server(config);
  os::JobSpec spec;
  spec.case_id = "I9";
  const os::Response response =
      server.handle(submit_request(spec, /*wait=*/false));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "unknown-case");
}

TEST(Server, StatusAndResultTrackTheLifecycle) {
  os::ServerConfig config;
  config.workers = 1;
  os::Server server(config);
  const os::Response submitted =
      server.handle(submit_request(tiny_spec(12), /*wait=*/false));
  ASSERT_TRUE(submitted.ok);
  ASSERT_NE(submitted.job, 0u);

  const os::Response missing = server.handle(job_request(os::Op::Status, 999));
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error, "unknown-job");

  const os::Response done =
      server.handle(job_request(os::Op::Result, submitted.job, /*wait=*/true));
  ASSERT_TRUE(done.ok);
  EXPECT_EQ(done.state, "done");
  EXPECT_TRUE(done.has_record);

  const os::Response status =
      server.handle(job_request(os::Op::Status, submitted.job));
  EXPECT_TRUE(status.ok);
  EXPECT_EQ(status.state, "done");
  EXPECT_FALSE(status.has_record);  // records only travel on `result`

  const os::Response summary = server.handle(job_request(os::Op::Status, 0));
  EXPECT_TRUE(summary.ok);
  EXPECT_EQ(summary.state, "serving");
}

TEST(Server, BackpressureAndCancelWhileQueued) {
  os::ServerConfig config;
  config.workers = 1;
  config.queue_limit = 1;
  os::Server server(config);

  // A beefier first job occupies the single worker; B fills the
  // one-slot queue; C must bounce.
  os::JobSpec slow = tiny_spec(13);
  slow.groups = 30;
  slow.bits_hi = 6;
  const os::Response a = server.handle(submit_request(slow, /*wait=*/false));
  ASSERT_TRUE(a.ok);
  // Wait for the worker to pop A (the queue slot frees up).
  for (int i = 0; i < 5000; ++i) {
    const os::Response status = server.handle(job_request(os::Op::Status, a.job));
    if (status.state != "queued") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const os::Response b =
      server.handle(submit_request(tiny_spec(14), /*wait=*/false));
  ASSERT_TRUE(b.ok) << b.error << ": " << b.detail;
  const os::Response c =
      server.handle(submit_request(tiny_spec(15), /*wait=*/false));
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.error, "backpressure");

  // Cancel B while it is still queued: it settles with no record.
  const os::Response canceled =
      server.handle(job_request(os::Op::Cancel, b.job));
  ASSERT_TRUE(canceled.ok);
  EXPECT_EQ(canceled.state, "canceled");
  const os::Response result =
      server.handle(job_request(os::Op::Result, b.job, /*wait=*/true));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.state, "canceled");
  EXPECT_FALSE(result.has_record);

  const oo::MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.counter("serve.rejected.backpressure"), 1u);
  EXPECT_EQ(snapshot.counter("serve.jobs.canceled"), 1u);
  server.shutdown(/*cancel_running=*/true);
}

TEST(Server, SessionStopInterruptsJobsDeterministically) {
  // A pre-requested session stop (the daemon's SIGINT path) trips
  // every job at its first checkpoint: the job settles as canceled
  // with a valid degraded run-interrupted record, which is appended to
  // the ledger but never cached.
  const std::string path = temp_path("serve_server_interrupt.jsonl");
  std::remove(path.c_str());
  operon::util::StopSource session;
  session.request_stop();
  os::ServerConfig config;
  config.ledger_path = path;
  config.workers = 1;
  config.session_stop = session.token();
  os::Server server(config);

  const os::Response result =
      server.handle(submit_request(tiny_spec(16), /*wait=*/true));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.state, "canceled");
  ASSERT_TRUE(result.has_record);
  EXPECT_TRUE(result.record.degraded);
  EXPECT_EQ(result.record.trip_checkpoint, 1u);
  EXPECT_TRUE(has_diag(result.record, "run-interrupted"));

  // The interrupted record is history, not a servable result: it was
  // appended to the ledger but must never be cached.
  EXPECT_EQ(server.records_appended(), 1u);
  EXPECT_EQ(server.cache_size(), 0u);
  std::remove(path.c_str());
}

TEST(Server, CancelRunningJobEndsValidEitherWay) {
  // Cancelling a running job races the run's own completion by design
  // (the stop lands at the next checkpoint). Both outcomes must be
  // sound: canceled -> degraded run-interrupted record, never cached;
  // done -> clean record, cached.
  os::ServerConfig config;
  config.workers = 1;
  os::Server server(config);
  os::JobSpec slow = tiny_spec(16);
  slow.groups = 40;
  slow.bits_hi = 7;
  const os::Response submitted =
      server.handle(submit_request(slow, /*wait=*/false));
  ASSERT_TRUE(submitted.ok);
  for (int i = 0; i < 5000; ++i) {
    const os::Response status =
        server.handle(job_request(os::Op::Status, submitted.job));
    if (status.state != "queued") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const os::Response canceled =
      server.handle(job_request(os::Op::Cancel, submitted.job));
  ASSERT_TRUE(canceled.ok);

  const os::Response result =
      server.handle(job_request(os::Op::Result, submitted.job, /*wait=*/true));
  ASSERT_TRUE(result.ok);
  ASSERT_TRUE(result.has_record);
  if (result.state == "canceled") {
    EXPECT_TRUE(result.record.degraded);
    EXPECT_GT(result.record.trip_checkpoint, 0u);
    EXPECT_TRUE(has_diag(result.record, "run-interrupted"));
    EXPECT_EQ(server.cache_size(), 0u);
  } else {
    EXPECT_EQ(result.state, "done");
    EXPECT_EQ(result.record.trip_checkpoint, 0u);
    EXPECT_EQ(server.cache_size(), 1u);
  }
}

TEST(Server, ShutdownDrainsQueuedJobsAndRejectsNewOnes) {
  const std::string path = temp_path("serve_server_drain.jsonl");
  std::remove(path.c_str());
  os::ServerConfig config;
  config.ledger_path = path;
  config.workers = 2;
  os::Server server(config);
  std::vector<std::uint64_t> jobs;
  for (std::uint64_t seed = 21; seed < 25; ++seed) {
    const os::Response response =
        server.handle(submit_request(tiny_spec(seed), /*wait=*/false));
    ASSERT_TRUE(response.ok);
    jobs.push_back(response.job);
  }
  server.shutdown(/*cancel_running=*/false);  // graceful: finish the queue
  for (const std::uint64_t job : jobs) {
    const os::Response result =
        server.handle(job_request(os::Op::Result, job, /*wait=*/true));
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.state, "done");
  }
  EXPECT_EQ(server.records_appended(), 4u);
  const os::Response late =
      server.handle(submit_request(tiny_spec(99), /*wait=*/false));
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.error, "shutting-down");
  std::remove(path.c_str());
}

TEST(Server, WarmStartPrimesTheCacheFromTheLedger) {
  const std::string path = temp_path("serve_server_warm.jsonl");
  std::remove(path.c_str());
  {
    os::ServerConfig config;
    config.ledger_path = path;
    os::Server server(config);
    const os::Response response =
        server.handle(submit_request(tiny_spec(31), /*wait=*/true));
    ASSERT_TRUE(response.ok);
    server.shutdown(false);
  }
  // A fresh server over the same ledger serves the record from cache.
  os::ServerConfig config;
  config.ledger_path = path;
  os::Server server(config);
  const os::Response response =
      server.handle(submit_request(tiny_spec(31), /*wait=*/true));
  ASSERT_TRUE(response.ok);
  EXPECT_TRUE(response.cached);
  EXPECT_EQ(server.records_appended(), 0u);
  std::remove(path.c_str());
}

// -- per-tenant quotas -----------------------------------------------------

TEST(Server, TenantMaxQueuedQuotaIsAStructuredRejection) {
  os::ServerConfig config;
  config.workers = 1;
  config.tenant_max_queued = 1;
  os::Server server(config);

  // A beefier first job occupies the single worker (it pops off the
  // queue), then one queued job fills tenant "default"'s quota.
  os::JobSpec slow = tiny_spec(41);
  slow.groups = 30;
  slow.bits_hi = 6;
  const os::Response a = server.handle(submit_request(slow, /*wait=*/false));
  ASSERT_TRUE(a.ok);
  for (int i = 0; i < 5000; ++i) {
    const os::Response status =
        server.handle(job_request(os::Op::Status, a.job));
    if (status.state != "queued") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const os::Response b =
      server.handle(submit_request(tiny_spec(42), /*wait=*/false));
  ASSERT_TRUE(b.ok) << b.error << ": " << b.detail;
  const os::Response c =
      server.handle(submit_request(tiny_spec(43), /*wait=*/false));
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.error, "quota-exceeded");

  // Another tenant's lane is unaffected: quotas are per tenant.
  os::JobSpec other = tiny_spec(44);
  other.tenant = "other";
  EXPECT_TRUE(server.handle(submit_request(other, /*wait=*/false)).ok);

  const oo::MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.counter("serve.quota_rejected"), 1u);
  server.shutdown(/*cancel_running=*/true);
}

TEST(Server, TenantMaxInflightQuotaCountsUntilSettle) {
  os::ServerConfig config;
  config.workers = 1;
  config.tenant_max_inflight = 1;
  os::Server server(config);

  os::JobSpec slow = tiny_spec(45);
  slow.groups = 30;
  slow.bits_hi = 6;
  const os::Response a = server.handle(submit_request(slow, /*wait=*/false));
  ASSERT_TRUE(a.ok);
  const os::Response rejected =
      server.handle(submit_request(tiny_spec(46), /*wait=*/false));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "quota-exceeded");

  // Once the job settles, the slot frees and the tenant admits again.
  const os::Response settled =
      server.handle(job_request(os::Op::Result, a.job, /*wait=*/true));
  ASSERT_TRUE(settled.ok);
  const os::Response admitted =
      server.handle(submit_request(tiny_spec(46), /*wait=*/true));
  EXPECT_TRUE(admitted.ok) << admitted.error << ": " << admitted.detail;
  server.shutdown(false);
}

TEST(Server, CacheServedSubmitsNeverCountAgainstQuotas) {
  os::ServerConfig config;
  config.workers = 1;
  config.tenant_max_inflight = 1;
  os::Server server(config);
  // Warm the key, then hammer it: every hit settles instantly without
  // touching the queue, so the quota never binds.
  ASSERT_TRUE(server.handle(submit_request(tiny_spec(47), /*wait=*/true)).ok);
  for (int i = 0; i < 5; ++i) {
    const os::Response hit =
        server.handle(submit_request(tiny_spec(47), /*wait=*/false));
    ASSERT_TRUE(hit.ok);
    EXPECT_EQ(hit.state, "done");
  }
  const oo::MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.counter("serve.quota_rejected"), 0u);
  server.shutdown(false);
}

// -- per-job deadlines -----------------------------------------------------

TEST(Server, ExpiredDeadlineDegradesOntoTheTimeLimitRung) {
  os::ServerConfig config;
  config.workers = 1;
  os::Server server(config);

  // An effectively-expired deadline trips the run at its FIRST
  // checkpoint: the job still settles done with a degraded record (the
  // degradation contract — never a throw, never a lost job).
  os::JobSpec spec = tiny_spec(51);
  spec.groups = 30;
  spec.bits_hi = 6;
  spec.deadline_s = 1e-6;
  const os::Response done =
      server.handle(submit_request(spec, /*wait=*/true));
  ASSERT_TRUE(done.ok) << done.error << ": " << done.detail;
  EXPECT_EQ(done.state, "done");
  ASSERT_TRUE(done.has_record);
  EXPECT_TRUE(done.record.degraded);
  EXPECT_GT(done.record.trip_checkpoint, 0u);
  EXPECT_TRUE(has_diag(done.record, "run-time-limit"));

  const oo::MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.counter("serve.deadline.tripped"), 1u);

  // The tripped record is real run history but never servable: a fresh
  // submit without the deadline recomputes cleanly.
  os::JobSpec clean = spec;
  clean.deadline_s = 0.0;
  const os::Response fresh =
      server.handle(submit_request(clean, /*wait=*/true));
  ASSERT_TRUE(fresh.ok);
  EXPECT_FALSE(fresh.cached);
  EXPECT_FALSE(fresh.record.degraded);
  server.shutdown(false);
}

TEST(Server, DeadlineDoesNotChangeTheJobKey) {
  // The deadline is wall-clock service policy, not semantics: specs
  // differing only in deadline_s share one cache identity.
  os::ServerConfig config;
  config.workers = 1;
  os::Server server(config);
  ASSERT_TRUE(server.handle(submit_request(tiny_spec(52), /*wait=*/true)).ok);
  os::JobSpec spec = tiny_spec(52);
  spec.deadline_s = 3600.0;  // generous: cannot trip, must not split
  const os::Response hit =
      server.handle(submit_request(spec, /*wait=*/true));
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(server.records_appended(), 1u);
  server.shutdown(false);
}

TEST(ResultCache, PrimeFromLedgerReportsSalvageAccount) {
  const std::string path = temp_path("serve_prime_salvage.jsonl");
  std::remove(path.c_str());
  oo::LedgerRecord record;
  record.case_id = "I1";
  record.seed = 4;
  record.options = "opts";
  record.solver = "lr";
  oo::append_ledger_record(path, record);
  {
    std::ofstream os(path, std::ios::app);
    os << "torn{garbage";  // unterminated crash tail
  }
  os::ResultCache cache;
  oo::LedgerSalvage salvage;
  EXPECT_EQ(cache.prime_from_ledger(path, &salvage), 1u);
  EXPECT_EQ(salvage.skipped, 1u);
  EXPECT_FALSE(salvage.missing);
  ASSERT_EQ(salvage.findings.size(), 1u);

  oo::LedgerSalvage missing;
  os::ResultCache empty;
  EXPECT_EQ(empty.prime_from_ledger(temp_path("serve_prime_absent.jsonl"),
                                    &missing),
            0u);
  EXPECT_TRUE(missing.missing);
  std::remove(path.c_str());
}

}  // namespace
