// Differential tests for the sweep-line crossing engine: on randomized
// segment soups across density/orientation regimes the sweep must equal
// the brute-force oracle exactly (both apply the same proper-crossing
// predicate, so even degenerate inputs must agree).

#include <gtest/gtest.h>

#include <vector>

#include "geom/segment.hpp"
#include "geom/sweep.hpp"
#include "util/rng.hpp"

namespace operon::geom {
namespace {

enum class Regime { General, Rectilinear, Collinear, Clustered, Degenerate };

std::vector<Segment> random_soup(util::Rng& rng, std::size_t count,
                                 double extent, double max_len,
                                 Regime regime) {
  std::vector<Segment> segs;
  segs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point a{rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
    Point b{a.x + rng.uniform(-max_len, max_len),
            a.y + rng.uniform(-max_len, max_len)};
    switch (regime) {
      case Regime::General:
        break;
      case Regime::Rectilinear:
        // Manhattan routes: axis-parallel, lots of shared coordinates.
        if (rng.bernoulli(0.5)) {
          b.y = a.y;
        } else {
          b.x = a.x;
        }
        break;
      case Regime::Collinear:
        // Many segments on few shared lines: overlaps and T-junctions.
        a.y = b.y = 10.0 * rng.uniform_int(0, 4);
        if (rng.bernoulli(0.3)) b = Point{b.x, a.y + rng.uniform(-5.0, 5.0)};
        break;
      case Regime::Clustered:
        // Dense hot spot: near-quadratic pair count in one corner.
        a = Point{rng.uniform(0.0, extent / 10.0),
                  rng.uniform(0.0, extent / 10.0)};
        b = Point{a.x + rng.uniform(-max_len, max_len),
                  a.y + rng.uniform(-max_len, max_len)};
        break;
      case Regime::Degenerate:
        // Zero-length segments and exact duplicates sprinkled in.
        if (rng.bernoulli(0.3)) b = a;
        if (rng.bernoulli(0.2) && !segs.empty()) {
          segs.push_back(segs.back());
          continue;
        }
        break;
    }
    segs.push_back({a, b});
  }
  return segs;
}

class SweepRegimeTest : public ::testing::TestWithParam<Regime> {};

TEST_P(SweepRegimeTest, SweepMatchesBruteForce) {
  util::Rng rng(0xC0FFEE + static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 40; ++round) {
    const auto lhs_count = static_cast<std::size_t>(rng.uniform_int(0, 60));
    const auto rhs_count = static_cast<std::size_t>(rng.uniform_int(0, 60));
    const double max_len = rng.bernoulli(0.5) ? 30.0 : 200.0;
    const auto lhs = random_soup(rng, lhs_count, 100.0, max_len, GetParam());
    const auto rhs = random_soup(rng, rhs_count, 100.0, max_len, GetParam());
    const std::size_t brute = count_crossings_brute(lhs, rhs);
    EXPECT_EQ(count_crossings_sweep(lhs, rhs), brute);
    // The public entry point dispatches between the two; its result must
    // be threshold-independent.
    EXPECT_EQ(count_crossings(lhs, rhs), brute);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegimes, SweepRegimeTest,
                         ::testing::Values(Regime::General, Regime::Rectilinear,
                                           Regime::Collinear, Regime::Clustered,
                                           Regime::Degenerate));

TEST(CrossingSweep, GroupedCountsMatchPerGroupBrute) {
  util::Rng rng(0xBEEF);
  for (int round = 0; round < 25; ++round) {
    const auto groups = static_cast<std::size_t>(rng.uniform_int(1, 5));
    std::vector<std::vector<Segment>> lhs_groups(groups);
    CrossingSweep sweep;
    sweep.clear();
    for (std::size_t g = 0; g < groups; ++g) {
      lhs_groups[g] = random_soup(rng, static_cast<std::size_t>(
                                           rng.uniform_int(0, 20)),
                                  100.0, 80.0, Regime::General);
      for (const Segment& s : lhs_groups[g]) {
        sweep.add_lhs(static_cast<std::uint32_t>(g), s);
      }
    }
    const auto rhs = random_soup(rng, static_cast<std::size_t>(
                                          rng.uniform_int(0, 40)),
                                 100.0, 80.0, Regime::General);
    for (const Segment& t : rhs) sweep.add_rhs(t);

    std::vector<int> counts(groups, 0);
    const std::size_t total = sweep.run(counts);
    std::size_t expected_total = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t expected = count_crossings_brute(lhs_groups[g], rhs);
      EXPECT_EQ(static_cast<std::size_t>(counts[g]), expected);
      expected_total += expected;
    }
    EXPECT_EQ(total, expected_total);
  }
}

TEST(CrossingSweep, ReuseAcrossRunsIsClean) {
  CrossingSweep sweep;
  const std::vector<Segment> cross_a = {{{0.0, 0.0}, {10.0, 10.0}}};
  const std::vector<Segment> cross_b = {{{0.0, 10.0}, {10.0, 0.0}}};
  for (int i = 0; i < 3; ++i) {
    sweep.clear();
    for (const Segment& s : cross_a) sweep.add_lhs(0, s);
    for (const Segment& t : cross_b) sweep.add_rhs(t);
    EXPECT_EQ(sweep.run(), 1u);
  }
  sweep.clear();
  EXPECT_EQ(sweep.run(), 0u);  // empty run after reuse
}

TEST(CrossingSweep, TouchingEndpointsAndTJunctionsDoNotCount) {
  // Shared endpoint, T-junction, and collinear overlap: not proper.
  const std::vector<Segment> lhs = {{{0.0, 0.0}, {10.0, 0.0}}};
  const std::vector<Segment> shared_end = {{{10.0, 0.0}, {20.0, 5.0}}};
  const std::vector<Segment> tee = {{{5.0, 0.0}, {5.0, 8.0}}};
  const std::vector<Segment> overlap = {{{2.0, 0.0}, {8.0, 0.0}}};
  const std::vector<Segment> proper = {{{5.0, -1.0}, {5.0, 1.0}}};
  EXPECT_EQ(count_crossings_sweep(lhs, shared_end), 0u);
  EXPECT_EQ(count_crossings_sweep(lhs, tee), 0u);
  EXPECT_EQ(count_crossings_sweep(lhs, overlap), 0u);
  EXPECT_EQ(count_crossings_sweep(lhs, proper), 1u);
}

}  // namespace
}  // namespace operon::geom
