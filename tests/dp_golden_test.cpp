// Bit-for-bit pin of the co-design DP output across representation
// changes: the digests below were captured from the pre-arena build
// (std::vector<EdgeKind> labels, per-merge heap copies), so the
// arena-backed DP must reproduce the exact same candidates — kinds,
// powers, and per-path losses to the last bit — for these instances.
// If a DELIBERATE algorithmic change to the DP (not a storage change)
// alters the output, re-capture the digests and say so in the commit.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codesign/crossing.hpp"
#include "codesign/dp.hpp"
#include "model/params.hpp"
#include "steiner/bi1s.hpp"
#include "util/rng.hpp"

namespace operon::codesign {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t dp_digest(std::uint64_t seed, bool with_estimator,
                        std::size_t max_labels) {
  util::Rng rng(seed);
  const model::TechParams params = model::TechParams::dac18_defaults();
  const auto terminals = 3 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  std::vector<geom::Point> pts(terminals);
  for (auto& p : pts) p = {rng.uniform(0, 15000), rng.uniform(0, 15000)};
  const steiner::SteinerTree tree =
      steiner::bi1s(pts, {.metric = steiner::Metric::Euclidean});
  const steiner::RootedTree rooted = steiner::RootedTree::build(tree, 0);

  SegmentIndex index(geom::BBox::of({0, 0}, {15000, 15000}), 16);
  if (with_estimator) {
    for (std::size_t net = 1; net <= 6; ++net) {
      geom::Point a{rng.uniform(0, 15000), rng.uniform(0, 15000)};
      geom::Point b{rng.uniform(0, 15000), rng.uniform(0, 15000)};
      index.add(net, {a, b});
    }
  }
  index.finalize();

  AssembleContext ctx;
  ctx.tree = &tree;
  ctx.rooted = &rooted;
  ctx.bit_count = 8 + static_cast<std::size_t>(rng.uniform_int(0, 24));
  ctx.params = &params;
  ctx.estimator = with_estimator ? &index : nullptr;
  ctx.net_id = 0;

  DpOptions options;
  options.max_labels = max_labels;
  const auto candidates = run_codesign_dp(ctx, 0, options);

  std::uint64_t h = 14695981039346656037ull;
  for (const auto& cand : candidates) {
    // NOTE: hashes size() *bytes* of the kinds array (the prefix), as the
    // capture harness did; power_pj already depends on every kind.
    h = fnv1a(h, cand.edge_kinds.data(), cand.edge_kinds.size());
    h = fnv1a(h, &cand.power_pj, sizeof(double));
    for (const auto& path : cand.paths) {
      h = fnv1a(h, &path.static_loss_db, sizeof(double));
      h = fnv1a(h, &path.estimated_crossing_db, sizeof(double));
    }
  }
  return h;
}

struct GoldenCase {
  std::uint64_t seed;
  bool with_estimator;
  std::size_t max_labels;
  std::uint64_t digest;
};

// Captured from the pre-change build (see file comment).
constexpr GoldenCase kGolden[] = {
    {1ull, false, 24, 0x0d569e358a8166adull},
    {2ull, false, 24, 0xe93c72a83e62b711ull},
    {3ull, false, 24, 0x66923b6a64baafc6ull},
    {4ull, false, 24, 0x0637de7fa8816e02ull},
    {5ull, false, 24, 0x0736b07e52874525ull},
    {6ull, false, 24, 0xf563a8f3e5cdeda7ull},
    {1ull, true, 24, 0xd3252d07df7e5fceull},
    {2ull, true, 24, 0xfaf03714e51747a7ull},
    {3ull, true, 24, 0x19e26fd3ce6f9cecull},
    {4ull, true, 24, 0x71962066062fb97aull},
    {5ull, true, 24, 0x468b372e2a69fc2cull},
    {6ull, true, 24, 0xec8e685291e90983ull},
    {1ull, true, 0, 0xd3252d07df7e5fceull},
    {2ull, true, 0, 0xfaf03714e51747a7ull},
    {3ull, true, 0, 0x19e26fd3ce6f9cecull},
};

TEST(DpGolden, BitForBitStable) {
  for (const GoldenCase& c : kGolden) {
    EXPECT_EQ(dp_digest(c.seed, c.with_estimator, c.max_labels), c.digest)
        << "seed=" << c.seed << " estimator=" << c.with_estimator
        << " max_labels=" << c.max_labels;
  }
}

TEST(DpGolden, RepeatedRunsReuseArenasCleanly) {
  // Same digest when the thread-local arenas are warm from prior runs.
  const std::uint64_t first = dp_digest(1, true, 24);
  const std::uint64_t second = dp_digest(1, true, 24);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, 0xd3252d07df7e5fceull);
}

}  // namespace
}  // namespace operon::codesign
