// Unit tests for the util substrate: RNG determinism and distribution
// sanity, tables, string helpers, CLI parsing, check macros, timers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stop.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ou = operon::util;

TEST(Rng, DeterministicForSeed) {
  ou::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  ou::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInRange) {
  ou::Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit
}

TEST(Rng, UniformIntSingleValue) {
  ou::Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, Uniform01Bounds) {
  ou::Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  ou::Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, BernoulliExtremes) {
  ou::Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  ou::Rng rng(19);
  std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  ou::Rng rng(19);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), ou::CheckError);
}

TEST(Rng, ShufflePreservesElements) {
  ou::Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitIndependent) {
  ou::Rng a(5);
  ou::Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = ou::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(ou::trim("  hi \t\n"), "hi");
  EXPECT_EQ(ou::trim(""), "");
  EXPECT_EQ(ou::trim("   "), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(ou::format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(ou::format("%.2f", 3.14159), "3.14");
}

TEST(Strings, Fixed) {
  EXPECT_EQ(ou::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(ou::fixed(-0.5, 1), "-0.5");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(ou::with_commas(0), "0");
  EXPECT_EQ(ou::with_commas(999), "999");
  EXPECT_EQ(ou::with_commas(1000), "1,000");
  EXPECT_EQ(ou::with_commas(1234567), "1,234,567");
  EXPECT_EQ(ou::with_commas(-12345), "-12,345");
}

TEST(Table, TextRendering) {
  ou::Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("a  bb"), std::string::npos);
  EXPECT_NE(text.find("1  2"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  ou::Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  ou::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ou::CheckError);
}

TEST(Table, Markdown) {
  ou::Table t({"h"});
  t.add_row({"v"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| h |"), std::string::npos);
  EXPECT_NE(md.find("|---|"), std::string::npos);
  EXPECT_NE(md.find("| v |"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // Note: a bare positional may not directly follow a valueless flag
  // (the flag would greedily consume it), so it comes first.
  const char* argv[] = {"prog", "input.txt", "--alpha=1.5", "--name", "foo",
                        "--verbose"};
  ou::Cli cli(6, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get("name", ""), "foo");
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("quiet", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, IntFallback) {
  const char* argv[] = {"prog"};
  ou::Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 42), 42);
}

TEST(Cli, StrictNumericValues) {
  const char* argv[] = {"prog", "--n=-17", "--x=1.5e2", "--y=-0.25"};
  ou::Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), -17);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 150.0);
  EXPECT_DOUBLE_EQ(cli.get_double("y", 0.0), -0.25);
  // A present numeric flag also parses through get_double.
  EXPECT_DOUBLE_EQ(cli.get_double("n", 0.0), -17.0);
}

TEST(Cli, RejectsGarbageNumbers) {
  // Regression: get_int/get_double used to silently return 0 for any
  // non-numeric value, so `--seeds=all` meant `--seeds=0`.
  const char* argv[] = {"prog", "--n=banana", "--x=fast"};
  ou::Cli cli(3, argv);
  EXPECT_THROW(cli.get_int("n", 7), ou::CheckError);
  EXPECT_THROW(cli.get_double("x", 1.0), ou::CheckError);
}

TEST(Cli, RejectsTrailingJunk) {
  const char* argv[] = {"prog", "--n=12x", "--x=1.5.2", "--m=3 4"};
  ou::Cli cli(4, argv);
  EXPECT_THROW(cli.get_int("n", 0), ou::CheckError);
  EXPECT_THROW(cli.get_double("x", 0.0), ou::CheckError);
  EXPECT_THROW(cli.get_int("m", 0), ou::CheckError);
}

TEST(Cli, RejectsOverflow) {
  const char* argv[] = {"prog", "--n=99999999999999999999999", "--x=1e999999"};
  ou::Cli cli(3, argv);
  EXPECT_THROW(cli.get_int("n", 0), ou::CheckError);
  EXPECT_THROW(cli.get_double("x", 0.0), ou::CheckError);
}

TEST(Cli, RejectsBareFlagAsNumber) {
  // A valueless flag stores "true"; asking for a number must fail loudly
  // instead of producing 0.
  const char* argv[] = {"prog", "--threads"};
  ou::Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("threads", 1), ou::CheckError);
  EXPECT_TRUE(cli.get_bool("threads", false));
}

TEST(Check, ThrowsWithMessage) {
  try {
    OPERON_CHECK_MSG(1 == 2, "math is broken: " << 42);
    FAIL() << "expected throw";
  } catch (const ou::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken: 42"),
              std::string::npos);
  }
}

TEST(Timer, MeasuresElapsed) {
  ou::Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 10.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  ou::Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, TinyBudgetExpires) {
  ou::Deadline d(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_TRUE(d.expired());
}
