// Tests for the Table 1 baselines: the electrical (Streak-like) router
// and the GLOW-like optical router, including GLOW's split-blindness —
// the defect OPERON's splitting-loss modeling fixes.

#include <gtest/gtest.h>

#include "baseline/routers.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "util/rng.hpp"

namespace ob = operon::baseline;
namespace oc = operon::codesign;
namespace om = operon::model;
namespace og = operon::geom;

namespace {

const om::TechParams kParams = om::TechParams::dac18_defaults();

/// Buses with configurable fan-out (sink blocks) so splitting loss can be
/// made decisive.
om::Design fanout_design(std::size_t groups, std::size_t fanout,
                         std::uint64_t seed) {
  operon::util::Rng rng(seed);
  om::Design design;
  design.name = "fanout";
  design.chip = og::BBox::of({0, 0}, {20000, 20000});
  for (std::size_t g = 0; g < groups; ++g) {
    om::SignalGroup group;
    group.name = "g" + std::to_string(g);
    const og::Point src{rng.uniform(500, 3000), rng.uniform(500, 19000)};
    std::vector<og::Point> blocks;
    for (std::size_t f = 0; f < fanout; ++f) {
      blocks.push_back({rng.uniform(12000, 19500), rng.uniform(500, 19000)});
    }
    for (int b = 0; b < 10; ++b) {
      om::SignalBit bit;
      bit.source = {{src.x + rng.uniform(0, 80), src.y + rng.uniform(0, 80)},
                    om::PinRole::Source};
      for (const auto& block : blocks) {
        bit.sinks.push_back(
            {{block.x + rng.uniform(0, 80), block.y + rng.uniform(0, 80)},
             om::PinRole::Sink});
      }
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  }
  return design;
}

std::vector<oc::CandidateSet> candidates_for(const om::Design& design,
                                             const om::TechParams& params) {
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  return oc::generate_candidates(design, nets.hyper_nets, params);
}

}  // namespace

TEST(ElectricalRouter, AllNetsElectrical) {
  const auto sets = candidates_for(fanout_design(5, 1, 31), kParams);
  const auto result = ob::route_electrical(sets, kParams);
  ASSERT_EQ(result.chosen.size(), sets.size());
  EXPECT_EQ(result.electrical_nets, sets.size());
  EXPECT_EQ(result.optical_nets, 0u);
  EXPECT_EQ(result.detection_fallbacks, 0u);
  double sum = 0.0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_TRUE(result.chosen[i].pure_electrical());
    sum += sets[i].electrical().power_pj;
  }
  EXPECT_NEAR(result.total_power_pj, sum, 1e-9);
}

TEST(GlowRouter, LongBusesGoOptical) {
  const auto sets = candidates_for(fanout_design(5, 1, 32), kParams);
  const auto glow = ob::route_optical_glow(sets, kParams);
  EXPECT_EQ(glow.optical_nets, sets.size());
  const auto electrical = ob::route_electrical(sets, kParams);
  // The optical design is far cheaper (Table 1: ~3.5x).
  EXPECT_LT(glow.total_power_pj, electrical.total_power_pj * 0.5);
}

TEST(GlowRouter, SplitBlindnessCausesFallbacks) {
  // High fan-out + tight budget: GLOW admits nets based on propagation
  // only, but the 3-level splitting pushes true loss past lm, forcing
  // electrical fallbacks.
  om::TechParams tight = kParams;
  tight.optical.max_loss_db = 11.0;  // allows propagation+crossings, not 6-way splits
  const auto sets = candidates_for(fanout_design(6, 6, 33), tight);
  const auto glow = ob::route_optical_glow(sets, tight);
  EXPECT_GT(glow.detection_fallbacks, 0u);
  EXPECT_GT(glow.electrical_nets, 0u);
  // Fallbacks pay electrical power on those nets.
  const auto electrical = ob::route_electrical(sets, tight);
  EXPECT_LE(glow.total_power_pj, electrical.total_power_pj + 1e-9);
}

TEST(GlowRouter, PowerAccountingConsistent) {
  const auto sets = candidates_for(fanout_design(4, 2, 34), kParams);
  const auto glow = ob::route_optical_glow(sets, kParams);
  double sum = 0.0;
  for (const auto& cand : glow.chosen) sum += cand.power_pj;
  EXPECT_NEAR(sum, glow.total_power_pj, 1e-9);
  EXPECT_EQ(glow.optical_nets + glow.electrical_nets, sets.size());
}
