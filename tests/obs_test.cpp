// Tests for the observability layer: metrics registry semantics,
// snapshot comparison, trace recording, and the ambient-observation
// install/feed/absorb cycle that core::run_operon relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace oo = operon::obs;

TEST(Metrics, CounterAccumulatesInRegistrationOrder) {
  oo::MetricsRegistry registry;
  registry.add_counter("b.second");
  registry.add_counter("a.first", 4);
  registry.add_counter("b.second", 2);

  const oo::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.points.size(), 2u);
  // First-touch order, not lexicographic.
  EXPECT_EQ(snap.points[0].name, "b.second");
  EXPECT_EQ(snap.points[1].name, "a.first");
  EXPECT_EQ(snap.counter("b.second"), 3u);
  EXPECT_EQ(snap.counter("a.first"), 4u);
  EXPECT_EQ(snap.counter("absent"), 0u);
}

TEST(Metrics, GaugeOverwritesAndKeepsTimingFlag) {
  oo::MetricsRegistry registry;
  registry.set_gauge("power", 12.5);
  registry.set_gauge("power", 9.25);
  registry.set_gauge("time.total_s", 0.5, /*timing=*/true);

  const oo::MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge("power"), 9.25);
  const oo::MetricPoint* timing = snap.find("time.total_s");
  ASSERT_NE(timing, nullptr);
  EXPECT_TRUE(timing->timing);
  EXPECT_FALSE(snap.find("power")->timing);
}

TEST(Metrics, KindMismatchThrows) {
  oo::MetricsRegistry registry;
  registry.add_counter("x");
  EXPECT_THROW(registry.set_gauge("x", 1.0), operon::util::CheckError);
  EXPECT_THROW(registry.observe("x", 1.0), operon::util::CheckError);
}

TEST(Metrics, HistogramBucketsAndStats) {
  oo::MetricsRegistry registry;
  registry.observe("h", 0.5);
  registry.observe("h", 3.0);
  registry.observe("h", 1e9);  // lands in the overflow bucket

  const oo::MetricsSnapshot snap = registry.snapshot();
  const oo::MetricPoint* h = snap.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, oo::MetricKind::Histogram);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->value, 0.5 + 3.0 + 1e9);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 1e9);
  ASSERT_EQ(h->buckets.size(), oo::histogram_bounds().size() + 1);
  EXPECT_EQ(h->buckets.back(), 1u);  // the 1e9 observation
  std::uint64_t total = 0;
  for (const std::uint64_t b : h->buckets) total += b;
  EXPECT_EQ(total, 3u);
}

TEST(Metrics, AbsorbMergesAllKinds) {
  oo::MetricsRegistry a;
  a.add_counter("c", 2);
  a.set_gauge("g", 1.0);
  a.observe("h", 2.0);

  oo::MetricsRegistry b;
  b.add_counter("c", 3);
  b.set_gauge("g", 7.0);
  b.observe("h", 10.0);
  b.add_counter("only_b");

  a.absorb(b);
  const oo::MetricsSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.counter("c"), 5u);           // counters add
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 7.0);     // gauges take the other's
  const oo::MetricPoint* h = snap.find("h");  // histograms merge
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->min, 2.0);
  EXPECT_DOUBLE_EQ(h->max, 10.0);
  EXPECT_EQ(snap.counter("only_b"), 1u);  // new names register
}

TEST(Metrics, AbsorbSnapshotOverloadMatchesRegistryAbsorb) {
  oo::MetricsRegistry source;
  source.add_counter("c", 3);
  source.set_gauge("g", 7.0);
  source.set_gauge("time.x", 0.5, /*timing=*/true);
  source.observe("h", 10.0);
  source.observe("h", 0.25);

  oo::MetricsRegistry via_registry, via_snapshot;
  for (oo::MetricsRegistry* registry : {&via_registry, &via_snapshot}) {
    registry->add_counter("c", 2);
    registry->set_gauge("g", 1.0);
    registry->observe("h", 2.0);
  }
  via_registry.absorb(source);
  via_snapshot.absorb(source.snapshot());  // the ledger/stats path

  const oo::MetricsSnapshot a = via_registry.snapshot();
  const oo::MetricsSnapshot b = via_snapshot.snapshot();
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_TRUE(a.points[i] == b.points[i]) << a.points[i].name;
  }
  EXPECT_EQ(b.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(b.gauge("g"), 7.0);
  EXPECT_TRUE(b.find("time.x")->timing);
}

TEST(Metrics, SemanticEqualIgnoresTimingAndOrder) {
  oo::MetricsRegistry a;
  a.add_counter("c", 2);
  a.set_gauge("time.x", 0.123, /*timing=*/true);
  a.set_gauge("g", 5.0);

  oo::MetricsRegistry b;
  b.set_gauge("g", 5.0);  // different registration order
  b.add_counter("c", 2);
  b.set_gauge("time.x", 0.987, /*timing=*/true);  // different wall-clock

  EXPECT_TRUE(oo::semantic_equal(a.snapshot(), b.snapshot()));

  b.add_counter("c");  // now a semantic divergence
  EXPECT_FALSE(oo::semantic_equal(a.snapshot(), b.snapshot()));
}

TEST(Metrics, JsonParsesAndContainsPoints) {
  oo::MetricsRegistry registry;
  registry.add_counter("c", 2);
  registry.set_gauge("g", 1.5);
  registry.observe("h", 3.0);
  const std::string json = registry.to_json();
  const operon::util::JsonValue doc = operon::util::parse_json(json);
  const auto& metrics = doc.at("metrics").items();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].at("name").as_string(), "c");
  EXPECT_EQ(metrics[0].at("kind").as_string(), "counter");
  EXPECT_EQ(metrics[1].at("kind").as_string(), "gauge");
  EXPECT_EQ(metrics[2].at("kind").as_string(), "histogram");
}

TEST(Trace, RecorderAssignsDenseThreadSlots) {
  oo::TraceRecorder recorder;
  recorder.record("main", "test", 0.0, 1.0);
  std::thread worker(
      [&recorder] { recorder.record("worker", "test", 1.0, 2.0); });
  worker.join();
  recorder.record("main2", "test", 3.0, 1.0);

  const std::vector<oo::TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].tid, 0u);
  EXPECT_EQ(events[1].tid, 1u);
  EXPECT_EQ(events[2].tid, 0u);  // same thread, same slot
}

TEST(Trace, ChromeJsonShape) {
  oo::TraceRecorder recorder;
  recorder.record("phase", "operon", 10.0, 5.0);
  const operon::util::JsonValue doc =
      operon::util::parse_json(recorder.to_chrome_json());
  const auto& events = doc.at("traceEvents").items();
  ASSERT_EQ(events.size(), 1u);
  const auto& e = events[0];
  EXPECT_EQ(e.at("name").as_string(), "phase");
  EXPECT_EQ(e.at("cat").as_string(), "operon");
  EXPECT_EQ(e.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 1.0);
}

TEST(Ambient, HelpersNoOpWhenNothingInstalled) {
  ASSERT_EQ(oo::current(), nullptr);
  // Must not crash or register anywhere.
  oo::add_counter("ghost");
  oo::set_gauge("ghost", 1.0);
  oo::observe("ghost", 1.0);
  { OPERON_SPAN("ghost.span"); }
  ASSERT_EQ(oo::current(), nullptr);
}

TEST(Ambient, ScopedInstallRestoresAndNests) {
  ASSERT_EQ(oo::current(), nullptr);
  oo::Observation outer;
  {
    oo::ScopedObservation outer_scope(outer);
    EXPECT_EQ(oo::current(), &outer);
    oo::add_counter("seen");

    oo::Observation inner;
    {
      oo::ScopedObservation inner_scope(inner);
      EXPECT_EQ(oo::current(), &inner);
      oo::add_counter("seen", 2);
    }
    EXPECT_EQ(oo::current(), &outer);
    // Inner counts went to inner only; roll them up explicitly.
    EXPECT_EQ(inner.metrics.snapshot().counter("seen"), 2u);
    outer.absorb(inner);
  }
  EXPECT_EQ(oo::current(), nullptr);
  EXPECT_EQ(outer.metrics.snapshot().counter("seen"), 3u);
}

TEST(Ambient, SpanRecordsOnCurrentTrace) {
  oo::Observation observation;
  {
    oo::ScopedObservation scope(observation);
    OPERON_SPAN("unit.test_span");
  }
  const std::vector<oo::TraceEvent> events = observation.trace.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.test_span");
  EXPECT_EQ(events[0].category, "operon");
  EXPECT_GE(events[0].dur_us, 0.0);
}
