// Cross-cutting property tests: invariants that must hold across
// parameter regimes (loss budgets, crossing costs, solver choice, bus
// widths). These are the "laws of the system" that individual unit tests
// cannot express.

#include <gtest/gtest.h>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "core/flow.hpp"
#include "lr/lr.hpp"
#include "util/rng.hpp"

namespace oc = operon::codesign;
namespace om = operon::model;
namespace obg = operon::benchgen;

namespace {

om::Design small_case(std::uint64_t seed, std::size_t groups = 14) {
  obg::BenchmarkSpec spec;
  spec.name = "prop";
  spec.num_groups = groups;
  spec.bits_lo = 2;
  spec.bits_hi = 10;
  spec.sink_blocks_lo = 1;
  spec.sink_blocks_hi = 2;
  spec.seed = seed;
  return obg::generate_benchmark(spec);
}

std::vector<oc::CandidateSet> candidates_for(const om::Design& design,
                                             const om::TechParams& params) {
  operon::cluster::SignalProcessingOptions processing;
  processing.kmeans.capacity =
      static_cast<std::size_t>(params.optical.wdm_capacity);
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  return oc::generate_candidates(design, nets.hyper_nets, params);
}

}  // namespace

// --------------------------------------------------------------------
// Law 1: every solver's final selection satisfies all detection
// constraints, for any loss budget.

class LossBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossBudgetSweep, AllSolversFeasible) {
  om::TechParams params = om::TechParams::dac18_defaults();
  params.optical.max_loss_db = GetParam();
  const om::Design design = small_case(501);
  const auto sets = candidates_for(design, params);

  const auto exact = oc::solve_selection_exact(sets, params);
  EXPECT_TRUE(exact.violations.clean()) << "exact, lm=" << GetParam();
  const auto lr = operon::lr::solve_selection_lr(sets, params);
  EXPECT_TRUE(lr.violations.clean()) << "lr, lm=" << GetParam();

  // Exact never loses to LR when proven.
  if (exact.proven_optimal) {
    EXPECT_LE(exact.power_pj, lr.power_pj + 1e-9);
  }
}

TEST_P(LossBudgetSweep, OperonNeverWorseThanBothBaselines) {
  om::TechParams params = om::TechParams::dac18_defaults();
  params.optical.max_loss_db = GetParam();
  const om::Design design = small_case(502);
  const auto sets = candidates_for(design, params);

  const auto exact = oc::solve_selection_exact(sets, params);
  const auto electrical = operon::baseline::route_electrical(sets, params);
  EXPECT_LE(exact.power_pj, electrical.total_power_pj + 1e-9);
  // GLOW's configuration is a valid selection only when its all-optical
  // candidates exist in the option sets; the weaker (always true)
  // guarantee is against the all-electrical fallback above. Against GLOW
  // we allow a tiny epsilon for candidates OPERON pruned away.
  const auto glow = operon::baseline::route_optical_glow(sets, params);
  EXPECT_LE(exact.power_pj, glow.total_power_pj * 1.05 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Budgets, LossBudgetSweep,
                         ::testing::Values(3.0, 6.0, 10.0, 14.0, 20.0, 30.0));

// --------------------------------------------------------------------
// Law 2: monotonicity in the loss budget — loosening lm never increases
// the optimal power (every lm-feasible selection stays feasible).

TEST(Monotonicity, PowerNonIncreasingInLossBudget) {
  const om::Design design = small_case(503);
  double previous = std::numeric_limits<double>::infinity();
  for (double lm : {4.0, 8.0, 12.0, 16.0, 20.0, 26.0}) {
    om::TechParams params = om::TechParams::dac18_defaults();
    params.optical.max_loss_db = lm;
    const auto sets = candidates_for(design, params);
    const auto exact = oc::solve_selection_exact(sets, params);
    if (!exact.proven_optimal) continue;  // only compare proven optima
    EXPECT_LE(exact.power_pj, previous + 1e-6) << "lm=" << lm;
    previous = exact.power_pj;
  }
}

TEST(Monotonicity, OpticalShareGrowsWithBudget) {
  const om::Design design = small_case(504, 20);
  std::size_t previous_optical = 0;
  for (double lm : {2.0, 8.0, 20.0}) {
    om::TechParams params = om::TechParams::dac18_defaults();
    params.optical.max_loss_db = lm;
    const auto sets = candidates_for(design, params);
    const auto exact = oc::solve_selection_exact(sets, params);
    std::size_t optical = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!sets[i].options[exact.selection[i]].pure_electrical()) ++optical;
    }
    EXPECT_GE(optical + 1, previous_optical) << "lm=" << lm;  // +1 slack
    previous_optical = optical;
  }
}

// --------------------------------------------------------------------
// Law 3: the peel repair is idempotent, always clean, and never beats
// the exact optimum.

TEST(Peel, CleanIdempotentBounded) {
  operon::util::Rng rng(71);
  for (int trial = 0; trial < 5; ++trial) {
    const om::Design design = small_case(600 + static_cast<std::uint64_t>(trial));
    const om::TechParams params = om::TechParams::dac18_defaults();
    const auto sets = candidates_for(design, params);
    oc::SelectionEvaluator evaluator(sets, params);

    const auto peeled = evaluator.peel(evaluator.min_power_selection());
    EXPECT_TRUE(evaluator.violations(peeled).clean());
    const auto twice = evaluator.peel(peeled);
    EXPECT_EQ(twice, peeled);  // already clean -> unchanged

    const auto exact = oc::solve_selection_exact(sets, params);
    if (exact.proven_optimal) {
      EXPECT_GE(evaluator.total_power(peeled), exact.power_pj - 1e-9);
    }
  }
}

// --------------------------------------------------------------------
// Law 4: candidate sets are internally consistent for any crossing-cost
// regime.

class BetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(BetaSweep, CandidateSetInvariants) {
  om::TechParams params = om::TechParams::dac18_defaults();
  params.optical.beta_db_per_crossing = GetParam();
  const om::Design design = small_case(505);
  const auto sets = candidates_for(design, params);
  for (const auto& set : sets) {
    ASSERT_FALSE(set.options.empty());
    EXPECT_TRUE(set.electrical().pure_electrical());
    for (const auto& cand : set.options) {
      // Power decomposition is consistent.
      EXPECT_NEAR(cand.power_pj,
                  cand.electrical_power_pj + cand.optical_power_pj, 1e-9);
      // Detector count equals constraint-path count.
      EXPECT_EQ(static_cast<std::size_t>(cand.num_detectors),
                cand.paths.size());
      // Conversion sites match counts.
      EXPECT_EQ(cand.modulator_sites.size(),
                static_cast<std::size_t>(cand.num_modulators));
      EXPECT_EQ(cand.detector_sites.size(),
                static_cast<std::size_t>(cand.num_detectors));
      // Static loss fits the budget (the generation filter).
      EXPECT_LE(cand.worst_static_loss_db(),
                params.optical.max_loss_db + 1e-6);
      // Paths' segments are a subset of the candidate's optical segments.
      for (const auto& path : cand.paths) {
        EXPECT_LE(path.splitting_db, path.static_loss_db + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaSweep,
                         ::testing::Values(0.0, 0.2, 0.52, 1.5));

// --------------------------------------------------------------------
// Law 5: determinism — identical seeds give bit-identical results across
// the whole pipeline.

TEST(Determinism, FullPipelineReproducible) {
  const om::Design design = small_case(506);
  operon::core::OperonOptions options;
  const auto a = operon::core::run_operon(design, options);
  const auto b = operon::core::run_operon(design, options);
  EXPECT_EQ(a.selection, b.selection);
  EXPECT_DOUBLE_EQ(a.stats.power_pj, b.stats.power_pj);
  EXPECT_EQ(a.wdm_plan.initial_wdms, b.wdm_plan.initial_wdms);
  EXPECT_EQ(a.wdm_plan.final_wdms, b.wdm_plan.final_wdms);
}

// --------------------------------------------------------------------
// Law 6: solver cross-checks on bus-width extremes.

class WidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WidthSweep, ExactMatchesLiteralMip) {
  obg::BenchmarkSpec spec;
  spec.num_groups = 6;
  spec.bits_lo = GetParam();
  spec.bits_hi = GetParam();
  spec.seed = 507 + GetParam();
  const om::Design design = obg::generate_benchmark(spec);
  const om::TechParams params = om::TechParams::dac18_defaults();
  const auto sets = candidates_for(design, params);

  const auto exact = oc::solve_selection_exact(sets, params);
  const auto mip = oc::solve_selection_mip(sets, params);
  ASSERT_TRUE(exact.proven_optimal);
  ASSERT_TRUE(mip.proven_optimal);
  EXPECT_NEAR(exact.power_pj, mip.power_pj, 1e-6)
      << "width " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 8u, 32u));
