// Tests for the SVG canvas and routed-design rendering: well-formedness,
// coordinate mapping, escaping, and that renderings contain the expected
// primitives for a real routed design.

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "viz/render.hpp"
#include "viz/svg.hpp"

namespace ov = operon::viz;
namespace og = operon::geom;

namespace {
std::size_t count_occurrences(const std::string& text, const std::string& find) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(find); pos != std::string::npos;
       pos = text.find(find, pos + find.size())) {
    ++count;
  }
  return count;
}
}  // namespace

TEST(Svg, EmptyCanvasIsValidSvg) {
  ov::SvgCanvas canvas(og::BBox::of({0, 0}, {100, 50}), 400);
  const std::string svg = canvas.str();
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_DOUBLE_EQ(canvas.width_px(), 400.0);
  EXPECT_DOUBLE_EQ(canvas.height_px(), 200.0);  // aspect preserved
}

TEST(Svg, PrimitivesEmitted) {
  ov::SvgCanvas canvas(og::BBox::of({0, 0}, {10, 10}));
  canvas.line({0, 0}, {10, 10}, "#f00", 2.0);
  canvas.circle({5, 5}, 3.0, "#0f0");
  canvas.rect(og::BBox::of({1, 1}, {9, 9}), "#00f");
  canvas.text({2, 2}, "hi <&> there");
  canvas.polyline({{0, 0}, {5, 5}, {10, 0}}, "#333");
  const std::string svg = canvas.str();
  EXPECT_EQ(count_occurrences(svg, "<line"), 1u);
  EXPECT_EQ(count_occurrences(svg, "<circle"), 1u);
  EXPECT_GE(count_occurrences(svg, "<rect"), 2u);  // background + rect
  EXPECT_EQ(count_occurrences(svg, "<polyline"), 1u);
  EXPECT_NE(svg.find("hi &lt;&amp;&gt; there"), std::string::npos);
}

TEST(Svg, YAxisFlipped) {
  // World (0,0) must land at the bottom of the image.
  ov::SvgCanvas canvas(og::BBox::of({0, 0}, {100, 100}), 100);
  canvas.circle({0, 0}, 1.0, "#000");
  const std::string svg = canvas.str();
  EXPECT_NE(svg.find("cx=\"0\" cy=\"100\""), std::string::npos);
}

TEST(Svg, DashedLines) {
  ov::SvgCanvas canvas(og::BBox::of({0, 0}, {10, 10}));
  canvas.line({0, 0}, {10, 0}, "#000", 1.0, 1.0, /*dashed=*/true);
  EXPECT_NE(canvas.str().find("stroke-dasharray"), std::string::npos);
}

TEST(Render, RoutedDesignContainsAllLayers) {
  using namespace operon;
  benchgen::BenchmarkSpec spec;
  spec.num_groups = 8;
  spec.bits_lo = 4;
  spec.bits_hi = 8;
  spec.seed = 77;
  const model::Design design = benchgen::generate_benchmark(spec);
  core::OperonOptions options;
  const core::OperonResult result = core::run_operon(design, options);

  const std::string svg = ov::render_routed_design(
      design.chip, result.sets, result.selection);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Optical segments and conversion markers exist (each optical net has
  // at least one segment line, plus pin and conversion circles).
  EXPECT_GE(count_occurrences(svg, "<line"), result.stats.optical_nets);
  EXPECT_GT(count_occurrences(svg, "<circle"), 0u);
  // Legend entries present.
  EXPECT_NE(svg.find("optical waveguide"), std::string::npos);
  EXPECT_NE(svg.find("electrical wire"), std::string::npos);

  // The WDM overlay adds dashed purple waveguides.
  const std::string with_wdms = ov::render_with_wdms(
      design.chip, result.sets, result.selection, result.wdm_plan);
  EXPECT_GT(count_occurrences(with_wdms, "stroke-dasharray"), 0u);
  EXPECT_NE(with_wdms.find("WDM waveguide"), std::string::npos);
}

TEST(Render, CandidateRenderingMatchesSelectionRendering) {
  using namespace operon;
  benchgen::BenchmarkSpec spec;
  spec.num_groups = 4;
  spec.seed = 78;
  const model::Design design = benchgen::generate_benchmark(spec);
  core::OperonOptions options;
  const core::OperonResult result = core::run_operon(design, options);

  std::vector<codesign::Candidate> chosen;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    chosen.push_back(result.sets[i].options[result.selection[i]]);
  }
  const std::string a =
      ov::render_routed_design(design.chip, result.sets, result.selection);
  const std::string b =
      ov::render_candidates(design.chip, result.sets, chosen);
  EXPECT_EQ(a, b);
}
