// Tests for JSON run reports and the wavelength-assignment stage.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "wdm/wavelength.hpp"

namespace ocore = operon::core;
namespace ow = operon::wdm;

namespace {

ocore::OperonResult routed_fixture(const operon::model::Design& design,
                                   ocore::OperonOptions& options) {
  options.solver = ocore::SolverKind::Lr;
  return ocore::run_operon(design, options);
}

operon::model::Design small_design() {
  operon::benchgen::BenchmarkSpec spec;
  spec.num_groups = 10;
  spec.bits_lo = 3;
  spec.bits_hi = 12;
  spec.seed = 321;
  return operon::benchgen::generate_benchmark(spec);
}

}  // namespace

TEST(Report, ContainsExpectedFields) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  const std::string json = ocore::report_json(design, result, options);

  for (const char* field :
       {"\"design\":", "\"hyper_nets\":", "\"solver\":", "\"power_pj\":",
        "\"wdm\":", "\"runtimes_s\":", "\"nets\":",
        "\"lagrangian-relaxation\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
  // Brace balance (cheap well-formedness proxy given the writer's own
  // structural checks).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, PerNetSectionOptional) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  const std::string with = ocore::report_json(design, result, options, true);
  const std::string without =
      ocore::report_json(design, result, options, false);
  EXPECT_NE(with.find("\"nets\":"), std::string::npos);
  EXPECT_EQ(without.find("\"nets\":"), std::string::npos);
  EXPECT_LT(without.size(), with.size());
}

TEST(Report, WriteReadFile) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  const std::string path = "report_test_tmp.json";
  ocore::write_report(path, design, result, options);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(buffer.str(),
            ocore::report_json(design, result, options) + "\n");
  std::remove(path.c_str());
}

TEST(Wavelength, AssignmentValidOnRealPlan) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  ASSERT_FALSE(result.wdm_plan.allocations.empty());

  const auto wavelengths =
      ow::assign_wavelengths(result.wdm_plan, options.params.optical);
  EXPECT_TRUE(wavelengths.feasible);
  EXPECT_TRUE(ow::wavelengths_valid(result.wdm_plan, wavelengths,
                                    options.params.optical));
  // Channel-high-water per WDM within capacity.
  for (int used : wavelengths.channels_used) {
    EXPECT_GE(used, 0);
    EXPECT_LE(used, options.params.optical.wdm_capacity);
  }
}

TEST(Wavelength, ContiguousWherePossible) {
  // One WDM, two allocations 20 + 12 = 32: both runs contiguous.
  ow::WdmPlan plan;
  ow::Wdm wdm;
  wdm.capacity = 32;
  plan.wdms.push_back(wdm);
  plan.allocations.push_back({0, 0, 20});
  plan.allocations.push_back({1, 0, 12});
  operon::model::OpticalParams optical =
      operon::model::TechParams::dac18_defaults().optical;

  const auto wavelengths = ow::assign_wavelengths(plan, optical);
  ASSERT_TRUE(wavelengths.feasible);
  EXPECT_TRUE(ow::wavelengths_valid(plan, wavelengths, optical));
  for (const auto& assignment : wavelengths.assignments) {
    for (std::size_t k = 1; k < assignment.channels.size(); ++k) {
      EXPECT_EQ(assignment.channels[k], assignment.channels[k - 1] + 1);
    }
  }
  EXPECT_EQ(wavelengths.channels_used[0], 32);
}

TEST(Wavelength, DetectsCorruptAssignment) {
  ow::WdmPlan plan;
  ow::Wdm wdm;
  wdm.capacity = 8;
  plan.wdms.push_back(wdm);
  plan.allocations.push_back({0, 0, 4});
  operon::model::OpticalParams optical =
      operon::model::TechParams::dac18_defaults().optical;
  optical.wdm_capacity = 8;

  auto wavelengths = ow::assign_wavelengths(plan, optical);
  ASSERT_TRUE(ow::wavelengths_valid(plan, wavelengths, optical));
  // Duplicate a channel -> invalid.
  wavelengths.assignments[0].channels[1] =
      wavelengths.assignments[0].channels[0];
  EXPECT_FALSE(ow::wavelengths_valid(plan, wavelengths, optical));
  // Out-of-range channel -> invalid.
  wavelengths = ow::assign_wavelengths(plan, optical);
  wavelengths.assignments[0].channels[0] = 99;
  EXPECT_FALSE(ow::wavelengths_valid(plan, wavelengths, optical));
}
