// Tests for JSON run reports and the wavelength-assignment stage.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "wdm/wavelength.hpp"

namespace ocore = operon::core;
namespace ow = operon::wdm;

namespace {

ocore::OperonResult routed_fixture(const operon::model::Design& design,
                                   ocore::OperonOptions& options) {
  options.solver = ocore::SolverKind::Lr;
  return ocore::run_operon(design, options);
}

operon::model::Design small_design() {
  operon::benchgen::BenchmarkSpec spec;
  spec.num_groups = 10;
  spec.bits_lo = 3;
  spec.bits_hi = 12;
  spec.seed = 321;
  return operon::benchgen::generate_benchmark(spec);
}

}  // namespace

TEST(Report, ContainsExpectedFields) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  const std::string json = ocore::report_json(design, result, options);

  for (const char* field :
       {"\"design\":", "\"hyper_nets\":", "\"solver\":", "\"power_pj\":",
        "\"wdm\":", "\"runtimes_s\":", "\"nets\":",
        "\"lagrangian-relaxation\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
  // Brace balance (cheap well-formedness proxy given the writer's own
  // structural checks).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, PerNetSectionOptional) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  const std::string with = ocore::report_json(design, result, options, true);
  const std::string without =
      ocore::report_json(design, result, options, false);
  EXPECT_NE(with.find("\"nets\":"), std::string::npos);
  EXPECT_EQ(without.find("\"nets\":"), std::string::npos);
  EXPECT_LT(without.size(), with.size());
}

TEST(Report, WriteReadFile) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  const std::string path = "report_test_tmp.json";
  ocore::write_report(path, design, result, options);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(buffer.str(),
            ocore::report_json(design, result, options) + "\n");
  std::remove(path.c_str());
}

TEST(Report, StatsBlockRoundTripsByteStable) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  const std::string json = ocore::report_json(design, result, options);

  // The additive stats/metrics block is present and populated.
  const operon::util::JsonValue doc = operon::util::parse_json(json);
  const auto& metrics = doc.at("stats").at("metrics").items();
  ASSERT_FALSE(metrics.empty());
  bool saw_core_runs = false;
  for (const auto& point : metrics) {
    EXPECT_FALSE(point.at("name").as_string().empty());
    saw_core_runs =
        saw_core_runs || point.at("name").as_string() == "core.runs";
  }
  EXPECT_TRUE(saw_core_runs);

  // Byte-stable round trip through util::json — the golden property CI
  // comparisons rely on.
  EXPECT_EQ(operon::util::write_json(doc), json);
}

TEST(Report, NoTimingsIsDeterministicAcrossRuns) {
  const auto design = small_design();
  ocore::OperonOptions options;
  options.solver = ocore::SolverKind::Lr;
  ocore::ReportOptions report;
  report.timings = false;

  const auto a = ocore::run_operon(design, options);
  const auto b = ocore::run_operon(design, options);
  const std::string ja = ocore::report_json(design, a, options, report);
  const std::string jb = ocore::report_json(design, b, options, report);

  // No wall-clock content: the runtimes block and every timing-flagged
  // metric (time.*) are gone...
  EXPECT_EQ(ja.find("\"runtimes_s\":"), std::string::npos);
  EXPECT_EQ(ja.find("\"time."), std::string::npos);
  EXPECT_EQ(ja.find("\"timing\":"), std::string::npos);
  // ...so two identical runs report byte-identical documents.
  EXPECT_EQ(ja, jb);

  // The timed variant still has both.
  const std::string timed = ocore::report_json(design, a, options);
  EXPECT_NE(timed.find("\"runtimes_s\":"), std::string::npos);
  EXPECT_NE(timed.find("\"time.total_s\""), std::string::npos);
}

TEST(Report, DeprecatedAccessorsMirrorStats) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  // Compatibility surface for pre-RunStats callers: read-only views of
  // the same values.
  EXPECT_DOUBLE_EQ(result.power_pj(), result.stats.power_pj);
  EXPECT_EQ(result.optical_nets(), result.stats.optical_nets);
  EXPECT_EQ(result.electrical_nets(), result.stats.electrical_nets);
  EXPECT_EQ(result.timed_out(), result.stats.timed_out);
  EXPECT_EQ(result.proven_optimal(), result.stats.proven_optimal);
  EXPECT_EQ(result.lr_iterations(), result.stats.lr_iterations);
  EXPECT_DOUBLE_EQ(result.times().total_s(), result.stats.times.total_s());
  const std::string with_bool =
      ocore::report_json(design, result, options, /*include_per_net=*/true);
  ocore::ReportOptions report;
  report.per_net = true;
  EXPECT_EQ(with_bool, ocore::report_json(design, result, options, report));
}

TEST(Report, EmptyCandidateSetIsRejectedNotOutOfBounds) {
  // A candidate set with no options violates the generation contract
  // (the pure-electrical fallback must always exist); the selection
  // driver must say so instead of indexing out of bounds.
  std::vector<operon::codesign::CandidateSet> sets(1);
  sets[0].net = 7;
  ocore::OperonOptions options;
  EXPECT_THROW(ocore::run_selection_only(sets, options),
               operon::util::CheckError);
}

TEST(Wavelength, AssignmentValidOnRealPlan) {
  const auto design = small_design();
  ocore::OperonOptions options;
  const auto result = routed_fixture(design, options);
  ASSERT_FALSE(result.wdm_plan.allocations.empty());

  const auto wavelengths =
      ow::assign_wavelengths(result.wdm_plan, options.params.optical);
  EXPECT_TRUE(wavelengths.feasible);
  EXPECT_TRUE(ow::wavelengths_valid(result.wdm_plan, wavelengths,
                                    options.params.optical));
  // Channel-high-water per WDM within capacity.
  for (int used : wavelengths.channels_used) {
    EXPECT_GE(used, 0);
    EXPECT_LE(used, options.params.optical.wdm_capacity);
  }
}

TEST(Wavelength, ContiguousWherePossible) {
  // One WDM, two allocations 20 + 12 = 32: both runs contiguous.
  ow::WdmPlan plan;
  ow::Wdm wdm;
  wdm.capacity = 32;
  plan.wdms.push_back(wdm);
  plan.allocations.push_back({0, 0, 20});
  plan.allocations.push_back({1, 0, 12});
  operon::model::OpticalParams optical =
      operon::model::TechParams::dac18_defaults().optical;

  const auto wavelengths = ow::assign_wavelengths(plan, optical);
  ASSERT_TRUE(wavelengths.feasible);
  EXPECT_TRUE(ow::wavelengths_valid(plan, wavelengths, optical));
  for (const auto& assignment : wavelengths.assignments) {
    for (std::size_t k = 1; k < assignment.channels.size(); ++k) {
      EXPECT_EQ(assignment.channels[k], assignment.channels[k - 1] + 1);
    }
  }
  EXPECT_EQ(wavelengths.channels_used[0], 32);
}

TEST(Wavelength, DetectsCorruptAssignment) {
  ow::WdmPlan plan;
  ow::Wdm wdm;
  wdm.capacity = 8;
  plan.wdms.push_back(wdm);
  plan.allocations.push_back({0, 0, 4});
  operon::model::OpticalParams optical =
      operon::model::TechParams::dac18_defaults().optical;
  optical.wdm_capacity = 8;

  auto wavelengths = ow::assign_wavelengths(plan, optical);
  ASSERT_TRUE(ow::wavelengths_valid(plan, wavelengths, optical));
  // Duplicate a channel -> invalid.
  wavelengths.assignments[0].channels[1] =
      wavelengths.assignments[0].channels[0];
  EXPECT_FALSE(ow::wavelengths_valid(plan, wavelengths, optical));
  // Out-of-range channel -> invalid.
  wavelengths = ow::assign_wavelengths(plan, optical);
  wavelengths.assignments[0].channels[0] = 99;
  EXPECT_FALSE(ow::wavelengths_valid(plan, wavelengths, optical));
}
