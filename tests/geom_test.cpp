// Unit + property tests for geometry: distances, bounding boxes, segment
// intersection/crossing predicates (the basis of crossing-loss counting).

#include <gtest/gtest.h>

#include "geom/bbox.hpp"
#include "geom/point.hpp"
#include "geom/segment.hpp"
#include "util/rng.hpp"

namespace og = operon::geom;

TEST(Point, Distances) {
  const og::Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(og::euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(og::manhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(og::squared_distance(a, b), 25.0);
}

TEST(Point, Arithmetic) {
  const og::Point a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (og::Point{4, 1}));
  EXPECT_EQ(a - b, (og::Point{-2, 3}));
  EXPECT_EQ(a * 2.0, (og::Point{2, 4}));
  EXPECT_EQ(og::midpoint(a, b), (og::Point{2, 0.5}));
}

TEST(Point, CrossAndDot) {
  EXPECT_DOUBLE_EQ(og::cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(og::cross({0, 1}, {1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(og::dot({1, 2}, {3, 4}), 11.0);
}

TEST(BBox, EmptyAndExpand) {
  og::BBox box;
  EXPECT_TRUE(box.is_empty());
  box.expand(og::Point{1, 2});
  EXPECT_FALSE(box.is_empty());
  EXPECT_DOUBLE_EQ(box.area(), 0.0);
  box.expand(og::Point{4, 6});
  EXPECT_DOUBLE_EQ(box.width(), 3.0);
  EXPECT_DOUBLE_EQ(box.height(), 4.0);
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 7.0);
  EXPECT_DOUBLE_EQ(box.area(), 12.0);
  EXPECT_EQ(box.center(), (og::Point{2.5, 4}));
}

TEST(BBox, OverlapSemantics) {
  const og::BBox a = og::BBox::of({0, 0}, {2, 2});
  const og::BBox b = og::BBox::of({2, 2}, {4, 4});  // touching corner
  const og::BBox c = og::BBox::of({3, 0}, {5, 1});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(a.overlaps(og::BBox::empty()));
  EXPECT_FALSE(og::BBox::empty().overlaps(a));
}

TEST(BBox, ContainsAndInflate) {
  const og::BBox a = og::BBox::of({0, 0}, {2, 2});
  EXPECT_TRUE(a.contains({1, 1}));
  EXPECT_TRUE(a.contains({0, 2}));  // boundary inclusive
  EXPECT_FALSE(a.contains({2.1, 1}));
  EXPECT_TRUE(a.inflated(0.5).contains({2.4, 1}));
}

TEST(Segment, LengthsAndOrientation) {
  const og::Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_DOUBLE_EQ(s.manhattan_length(), 7.0);
  EXPECT_FALSE(s.is_horizontal());
  EXPECT_TRUE((og::Segment{{0, 1}, {5, 1}}).is_horizontal());
  EXPECT_TRUE((og::Segment{{2, 0}, {2, 9}}).is_vertical());
}

TEST(Segment, OrientationPredicate) {
  EXPECT_EQ(og::orientation({0, 0}, {1, 0}, {1, 1}), 1);
  EXPECT_EQ(og::orientation({0, 0}, {1, 0}, {1, -1}), -1);
  EXPECT_EQ(og::orientation({0, 0}, {1, 0}, {2, 0}), 0);
}

TEST(Segment, ProperCrossing) {
  const og::Segment plus_h{{-1, 0}, {1, 0}};
  const og::Segment plus_v{{0, -1}, {0, 1}};
  EXPECT_TRUE(og::segments_cross(plus_h, plus_v));
  EXPECT_TRUE(og::segments_intersect(plus_h, plus_v));
}

TEST(Segment, SharedEndpointIsNotACrossing) {
  const og::Segment a{{0, 0}, {1, 1}};
  const og::Segment b{{1, 1}, {2, 0}};
  EXPECT_TRUE(og::segments_intersect(a, b));
  EXPECT_FALSE(og::segments_cross(a, b));
}

TEST(Segment, TJunctionIsNotACrossing) {
  const og::Segment bar{{-1, 0}, {1, 0}};
  const og::Segment stem{{0, 0}, {0, 1}};  // endpoint on bar's interior
  EXPECT_TRUE(og::segments_intersect(bar, stem));
  EXPECT_FALSE(og::segments_cross(bar, stem));
}

TEST(Segment, CollinearOverlapIsNotACrossing) {
  const og::Segment a{{0, 0}, {2, 0}};
  const og::Segment b{{1, 0}, {3, 0}};
  EXPECT_TRUE(og::segments_intersect(a, b));
  EXPECT_FALSE(og::segments_cross(a, b));
}

TEST(Segment, DisjointSegments) {
  const og::Segment a{{0, 0}, {1, 0}};
  const og::Segment b{{0, 1}, {1, 1}};
  EXPECT_FALSE(og::segments_intersect(a, b));
  EXPECT_FALSE(og::segments_cross(a, b));
}

TEST(Segment, CountCrossingsGrid) {
  // Two horizontal lines crossing two vertical lines: 4 proper crossings.
  std::vector<og::Segment> horizontal{{{0, 1}, {10, 1}}, {{0, 2}, {10, 2}}};
  std::vector<og::Segment> vertical{{{3, 0}, {3, 5}}, {{7, 0}, {7, 5}}};
  EXPECT_EQ(og::count_crossings(horizontal, vertical), 4u);
  EXPECT_EQ(og::count_crossings(vertical, horizontal), 4u);
}

TEST(Segment, PointSegmentDistance) {
  const og::Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(og::point_segment_distance({5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(og::point_segment_distance({-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(og::point_segment_distance({12, 0}, s), 2.0);
  const og::Segment degenerate{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(og::point_segment_distance({4, 5}, degenerate), 5.0);
}

TEST(Segment, TotalLength) {
  std::vector<og::Segment> segs{{{0, 0}, {3, 4}}, {{0, 0}, {0, 2}}};
  EXPECT_DOUBLE_EQ(og::total_length(segs), 7.0);
}

// Property: crossing is symmetric and invariant under endpoint swap.
TEST(SegmentProperty, CrossingSymmetry) {
  operon::util::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const og::Segment s{{rng.uniform(-10, 10), rng.uniform(-10, 10)},
                        {rng.uniform(-10, 10), rng.uniform(-10, 10)}};
    const og::Segment t{{rng.uniform(-10, 10), rng.uniform(-10, 10)},
                        {rng.uniform(-10, 10), rng.uniform(-10, 10)}};
    const bool st = og::segments_cross(s, t);
    EXPECT_EQ(st, og::segments_cross(t, s));
    EXPECT_EQ(st, og::segments_cross({s.b, s.a}, t));
    if (st) {
      EXPECT_TRUE(og::segments_intersect(s, t));
    }
  }
}

// Property: a proper crossing implies the bounding boxes overlap.
TEST(SegmentProperty, CrossingImpliesBBoxOverlap) {
  operon::util::Rng rng(123);
  for (int trial = 0; trial < 500; ++trial) {
    const og::Segment s{{rng.uniform(0, 100), rng.uniform(0, 100)},
                        {rng.uniform(0, 100), rng.uniform(0, 100)}};
    const og::Segment t{{rng.uniform(0, 100), rng.uniform(0, 100)},
                        {rng.uniform(0, 100), rng.uniform(0, 100)}};
    if (og::segments_cross(s, t)) {
      EXPECT_TRUE(s.bbox().overlaps(t.bbox()));
    }
  }
}
