// Tests for the WDM stage (§4): connection extraction, sweep placement
// invariants (capacity, disu window), disl legalization, and the
// network-flow assignment — including the paper's own Fig 6 example
// (three 20-bit connections, capacity 32: placement uses 3 WDMs, the
// flow assignment shares 2).

#include <gtest/gtest.h>

#include <map>

#include "model/params.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "wdm/assign.hpp"
#include "wdm/wdm.hpp"

namespace ow = operon::wdm;
namespace om = operon::model;

namespace {

om::OpticalParams optics() {
  om::OpticalParams params = om::TechParams::dac18_defaults().optical;
  params.wdm_capacity = 32;
  params.dis_lower_um = 20.0;
  params.dis_upper_um = 400.0;
  return params;
}

ow::Connection horizontal(std::size_t net, std::size_t bits, double y,
                          double x0, double x1) {
  return {net, bits, ow::Axis::Horizontal, y, x0, x1};
}

}  // namespace

TEST(Placement, SingleConnectionOneWdm) {
  const std::vector<ow::Connection> conns{horizontal(0, 20, 100, 0, 5000)};
  const auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, optics());
  ASSERT_EQ(wdms.size(), 1u);
  EXPECT_EQ(wdms[0].used, 20);
  EXPECT_DOUBLE_EQ(wdms[0].coord, 100);
}

TEST(Placement, CapacityForcesSecondWdm) {
  // Two 20-bit connections at the same y: 40 > 32 channels.
  const std::vector<ow::Connection> conns{
      horizontal(0, 20, 100, 0, 5000), horizontal(1, 20, 101, 0, 5000)};
  const auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, optics());
  EXPECT_EQ(wdms.size(), 2u);
}

TEST(Placement, SharesWithinCapacityAndWindow) {
  const std::vector<ow::Connection> conns{
      horizontal(0, 12, 100, 0, 5000), horizontal(1, 12, 150, 2000, 8000)};
  const auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, optics());
  ASSERT_EQ(wdms.size(), 1u);
  EXPECT_EQ(wdms[0].used, 24);
  // Span extends over both connections.
  EXPECT_DOUBLE_EQ(wdms[0].lo, 0);
  EXPECT_DOUBLE_EQ(wdms[0].hi, 8000);
}

TEST(Placement, DisUpperSplitsDistantConnections) {
  const std::vector<ow::Connection> conns{
      horizontal(0, 4, 100, 0, 5000), horizontal(1, 4, 900, 0, 5000)};
  const auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, optics());
  EXPECT_EQ(wdms.size(), 2u);
}

TEST(Placement, RejectsOverCapacityConnection) {
  const std::vector<ow::Connection> conns{horizontal(0, 64, 100, 0, 5000)};
  EXPECT_THROW(ow::place_wdms(conns, ow::Axis::Horizontal, optics()),
               operon::util::CheckError);
}

TEST(Placement, SweepInvariantsRandom) {
  operon::util::Rng rng(42);
  std::vector<ow::Connection> conns;
  for (std::size_t k = 0; k < 60; ++k) {
    conns.push_back(horizontal(k, 1 + static_cast<std::size_t>(rng.uniform_int(0, 19)),
                               rng.uniform(0, 20000), 0, rng.uniform(1000, 19000)));
  }
  const auto params = optics();
  const auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, params);
  std::size_t total_bits = 0;
  for (const auto& c : conns) total_bits += c.bits;
  std::size_t placed_bits = 0;
  for (const auto& w : wdms) {
    EXPECT_LE(w.used, w.capacity);
    EXPECT_GT(w.used, 0);
    placed_bits += static_cast<std::size_t>(w.used);
  }
  EXPECT_EQ(placed_bits, total_bits);
  // Never more WDMs than connections (sharing can only reduce).
  EXPECT_LE(wdms.size(), conns.size());
}

TEST(Legalize, EnforcesMinimumSpacing) {
  std::vector<ow::Wdm> wdms;
  for (int k = 0; k < 5; ++k) {
    ow::Wdm w;
    w.axis = ow::Axis::Horizontal;
    w.coord = 100.0 + 5.0 * k;  // 5 um apart, below disl = 20
    w.capacity = 32;
    w.used = 1;
    wdms.push_back(w);
  }
  EXPECT_FALSE(ow::spacing_legal(wdms, 20.0));
  ow::legalize_spacing(wdms, 20.0);
  EXPECT_TRUE(ow::spacing_legal(wdms, 20.0));
}

TEST(Legalize, AxesIndependent) {
  std::vector<ow::Wdm> wdms(2);
  wdms[0].axis = ow::Axis::Horizontal;
  wdms[0].coord = 100;
  wdms[1].axis = ow::Axis::Vertical;
  wdms[1].coord = 101;  // different axis: no conflict
  EXPECT_TRUE(ow::spacing_legal(wdms, 20.0));
  ow::legalize_spacing(wdms, 20.0);
  EXPECT_DOUBLE_EQ(wdms[1].coord, 101);
}

TEST(Assignment, Fig6ExampleSavesOneWdm) {
  // Paper Fig 6: three 20-bit connections, capacity 32. The greedy sweep
  // needs 3 WDMs (20+20 > 32 pairwise); the flow assignment splits the
  // middle connection's channels and shares 2 WDMs.
  const auto params = optics();
  const std::vector<ow::Connection> conns{
      horizontal(0, 20, 100, 0, 6000), horizontal(1, 20, 150, 0, 6000),
      horizontal(2, 20, 200, 0, 6000)};
  auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, params);
  ASSERT_EQ(wdms.size(), 3u);

  const auto result =
      ow::assign_connections(conns, wdms, ow::Axis::Horizontal, params);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.wdms_used, 2u);

  // All 60 channels allocated; per-WDM capacity respected.
  std::map<std::size_t, std::size_t> wdm_load;
  std::map<std::size_t, std::size_t> conn_bits;
  for (const auto& alloc : result.allocations) {
    wdm_load[alloc.wdm] += alloc.bits;
    conn_bits[alloc.connection] += alloc.bits;
  }
  for (const auto& [w, load] : wdm_load) EXPECT_LE(load, 32u);
  for (std::size_t c = 0; c < conns.size(); ++c) {
    EXPECT_EQ(conn_bits[c], 20u) << "connection " << c;
  }
}

TEST(Assignment, NoWdmsForEmptyAxis) {
  const auto params = optics();
  const std::vector<ow::Connection> conns{horizontal(0, 8, 100, 0, 1000)};
  const auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, params);
  const auto result =
      ow::assign_connections(conns, wdms, ow::Axis::Vertical, params);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.allocations.empty());
  EXPECT_EQ(result.wdms_used, 0u);
}

TEST(Assignment, NeverIncreasesWdmCount) {
  operon::util::Rng rng(77);
  const auto params = optics();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ow::Connection> conns;
    const std::size_t n = 10 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    for (std::size_t k = 0; k < n; ++k) {
      conns.push_back(horizontal(
          k, 1 + static_cast<std::size_t>(rng.uniform_int(0, 24)),
          rng.uniform(0, 10000), 0, rng.uniform(1000, 19000)));
    }
    auto wdms = ow::place_wdms(conns, ow::Axis::Horizontal, params);
    const auto result =
        ow::assign_connections(conns, wdms, ow::Axis::Horizontal, params);
    EXPECT_TRUE(result.feasible);
    EXPECT_LE(result.wdms_used, wdms.size());

    std::map<std::size_t, std::size_t> load, bits;
    for (const auto& alloc : result.allocations) {
      load[alloc.wdm] += alloc.bits;
      bits[alloc.connection] += alloc.bits;
    }
    for (const auto& [w, l] : load) {
      EXPECT_LE(l, static_cast<std::size_t>(params.wdm_capacity));
    }
    for (std::size_t c = 0; c < conns.size(); ++c) {
      EXPECT_EQ(bits[c], conns[c].bits);
    }
  }
}

TEST(Extract, DominantDirectionClassification) {
  // Build a minimal candidate set manually.
  operon::codesign::CandidateSet set;
  set.net = 7;
  set.bit_count = 9;
  operon::codesign::Candidate cand;
  cand.optical_segments = {{{0, 0}, {1000, 100}},   // horizontal-ish
                           {{500, 0}, {600, 2000}}};  // vertical-ish
  set.options.push_back(cand);
  set.electrical_index = 0;
  const std::vector<operon::codesign::CandidateSet> sets{set};
  const operon::codesign::Selection selection{0};
  const auto conns = ow::extract_connections(sets, selection);
  ASSERT_EQ(conns.size(), 2u);
  EXPECT_EQ(conns[0].axis, ow::Axis::Horizontal);
  EXPECT_DOUBLE_EQ(conns[0].coord, 50.0);
  EXPECT_DOUBLE_EQ(conns[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(conns[0].hi, 1000.0);
  EXPECT_EQ(conns[1].axis, ow::Axis::Vertical);
  EXPECT_EQ(conns[0].bits, 9u);
  EXPECT_EQ(conns[0].net, 7u);
}
