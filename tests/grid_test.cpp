// Tests for the tile-grid maze router: grid indexing, single-path
// routing, Steiner connection of multi-terminal nets, congestion
// negotiation, and the grid-based optical baseline built on top of it.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "grid/maze.hpp"
#include "util/rng.hpp"

namespace ogr = operon::grid;
namespace og = operon::geom;

namespace {
const og::BBox kChip = og::BBox::of({0, 0}, {20000, 20000});
}

TEST(RoutingGrid, TileIndexingRoundTrip) {
  ogr::RoutingGrid grid(kChip, 10);
  EXPECT_EQ(grid.num_tiles(), 100u);
  EXPECT_EQ(grid.tile_of({100, 100}), 0u);
  EXPECT_EQ(grid.tile_of({19900, 100}), 9u);
  EXPECT_EQ(grid.tile_of({100, 19900}), 90u);
  // Off-chip points clamp to the border tiles.
  EXPECT_EQ(grid.tile_of({-50, -50}), 0u);
  EXPECT_EQ(grid.tile_of({99999, 99999}), 99u);
  // Tile centers map back to their own tile.
  for (ogr::TileId t : {0u, 5u, 47u, 99u}) {
    EXPECT_EQ(grid.tile_of(grid.center(t)), t);
  }
}

TEST(RoutingGrid, NeighborsAndEdgeIndices) {
  ogr::RoutingGrid grid(kChip, 4);
  EXPECT_EQ(grid.neighbors(0).size(), 2u);    // corner
  EXPECT_EQ(grid.neighbors(1).size(), 3u);    // edge
  EXPECT_EQ(grid.neighbors(5).size(), 4u);    // interior
  EXPECT_EQ(grid.num_edges(), 2u * 4u * 3u);
  // Every adjacent pair maps to a unique edge id, symmetric in order.
  std::set<std::size_t> ids;
  for (ogr::TileId t = 0; t < grid.num_tiles(); ++t) {
    for (ogr::TileId n : grid.neighbors(t)) {
      EXPECT_EQ(grid.edge_index(t, n), grid.edge_index(n, t));
      ids.insert(grid.edge_index(t, n));
      EXPECT_LT(grid.edge_index(t, n), grid.num_edges());
    }
  }
  EXPECT_EQ(ids.size(), grid.num_edges());
}

TEST(MazeRouter, TwoPinRouteIsConnectedAndShort) {
  ogr::GridOptions options;
  options.tiles = 16;
  ogr::MazeRouter router(kChip, options);
  const std::vector<std::vector<og::Point>> nets{
      {{1000, 1000}, {18000, 1000}}};
  const auto routes = router.route_all(nets);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(routes[0].routed);
  EXPECT_FALSE(routes[0].edges.empty());
  // Roughly straight: no longer than Manhattan distance + 2 tile pitches.
  const double manhattan = 17000.0;
  EXPECT_LE(routes[0].length_um,
            manhattan + 2.5 * router.grid().tile_pitch_um());
  EXPECT_EQ(router.stats().failed_nets, 0u);
}

TEST(MazeRouter, MultiTerminalBuildsTree) {
  ogr::GridOptions options;
  options.tiles = 12;
  ogr::MazeRouter router(kChip, options);
  const std::vector<std::vector<og::Point>> nets{
      {{1000, 1000}, {18000, 2000}, {2000, 18000}, {18000, 18000}}};
  const auto routes = router.route_all(nets);
  ASSERT_TRUE(routes[0].routed);
  // The edge set must form a tree over its tiles: |edges| = |tiles| - 1.
  std::set<ogr::TileId> tiles;
  for (const auto& [a, b] : routes[0].edges) {
    tiles.insert(a);
    tiles.insert(b);
  }
  EXPECT_EQ(routes[0].edges.size(), tiles.size() - 1);
  // All four terminals' tiles are covered.
  for (const auto& pin : nets[0]) {
    EXPECT_TRUE(tiles.count(router.grid().tile_of(pin)));
  }
}

TEST(MazeRouter, SameTileNetIsTrivial) {
  ogr::MazeRouter router(kChip, {});
  const std::vector<std::vector<og::Point>> nets{{{100, 100}, {150, 150}}};
  const auto routes = router.route_all(nets);
  EXPECT_TRUE(routes[0].routed);
  EXPECT_TRUE(routes[0].edges.empty());
  EXPECT_DOUBLE_EQ(routes[0].length_um, 0.0);
}

TEST(MazeRouter, CongestionSpreadsParallelNets) {
  // Three nets between the same source/sink tiles with capacity 1: the
  // straight corridor can carry only one, so negotiation must find three
  // edge-disjoint paths (direct + detours above/below).
  ogr::GridOptions options;
  options.tiles = 12;
  options.edge_capacity = 1;
  options.max_rounds = 16;
  ogr::MazeRouter router(kChip, options);
  std::vector<std::vector<og::Point>> nets;
  for (int k = 0; k < 3; ++k) {
    nets.push_back({{500.0, 10000.0 + 10.0 * k}, {19500.0, 10000.0 + 10.0 * k}});
  }
  const auto routes = router.route_all(nets);
  EXPECT_EQ(router.stats().overflowed_edges, 0u)
      << "negotiation failed to resolve congestion in "
      << router.stats().rounds << " rounds";
  for (const auto& route : routes) EXPECT_TRUE(route.routed);
  // Usage respects capacity on every edge -> the paths are edge-disjoint.
  // (Present-congestion cost usually resolves this within the first
  // round; the history mechanism is the backstop for harder knots.)
  for (int usage : router.edge_usage()) EXPECT_LE(usage, 1);
}

TEST(MazeRouter, BendPenaltyStraightensRoutes) {
  ogr::GridOptions cheap_bends;
  cheap_bends.tiles = 16;
  cheap_bends.bend_penalty_um = 0.0;
  ogr::GridOptions dear_bends = cheap_bends;
  dear_bends.bend_penalty_um = 5000.0;

  const std::vector<std::vector<og::Point>> nets{
      {{1000, 1000}, {18000, 18000}}};
  ogr::MazeRouter free_router(kChip, cheap_bends);
  ogr::MazeRouter straight_router(kChip, dear_bends);
  const auto free_routes = free_router.route_all(nets);
  const auto straight_routes = straight_router.route_all(nets);
  EXPECT_LE(straight_routes[0].bends, free_routes[0].bends + 1);
  // With a huge bend penalty, the diagonal collapses to a single L.
  EXPECT_LE(straight_routes[0].bends, 2);
}

TEST(GridBaseline, RoutesRealBenchmark) {
  using namespace operon;
  benchgen::BenchmarkSpec spec;
  spec.num_groups = 20;
  spec.bits_lo = 4;
  spec.bits_hi = 8;
  spec.seed = 93;
  const model::Design design = benchgen::generate_benchmark(spec);
  cluster::SignalProcessingOptions processing;
  const auto nets = cluster::build_hyper_nets(design, processing);
  const auto params = model::TechParams::dac18_defaults();
  const auto sets = codesign::generate_candidates(design, nets.hyper_nets, params);

  const auto grid_result = baseline::route_optical_grid(sets, params);
  const auto& routing = grid_result.routing;
  ASSERT_EQ(routing.chosen.size(), sets.size());
  EXPECT_EQ(routing.optical_nets + routing.electrical_nets, sets.size());
  EXPECT_GT(routing.optical_nets, 0u);
  EXPECT_GT(grid_result.total_waveguide_um, 0.0);
  EXPECT_EQ(grid_result.maze_stats.failed_nets, 0u);

  // Grid waveguides are Manhattan: at least as long as the any-direction
  // baseline geometry of the same nets.
  const auto glow = baseline::route_optical_glow(sets, params);
  double euclid_total = 0.0;
  for (const auto& cand : glow.chosen) euclid_total += cand.optical_wl_um;
  EXPECT_GE(grid_result.total_waveguide_um, euclid_total * 0.9);

  // Every optical candidate built from the grid satisfies the candidate
  // invariants (detectors = paths, one modulator component per net here).
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const auto& cand = routing.chosen[i];
    if (cand.pure_electrical()) continue;
    EXPECT_EQ(cand.paths.size(), static_cast<std::size_t>(cand.num_detectors));
    EXPECT_GE(cand.num_modulators, 1);
  }
}
