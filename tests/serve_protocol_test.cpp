// Serve protocol robustness: the strict frame parser's golden paths and
// rejection paths, a seeded corrupt_frame sweep through
// Server::handle_line (every mangled frame must yield one parseable,
// structured response — never a crash, throw, or hang), and raw
// socket-level abuse against a live SocketServer (garbage bytes,
// unterminated oversized frames, mid-frame disconnects) after which the
// daemon must still serve clean clients.

#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/corrupt.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace os = operon::serve;
namespace ou = operon::util;

namespace {

os::Request parse(const std::string& line) {
  return os::parse_request(line);
}

// -- parser golden paths ---------------------------------------------------

TEST(ServeProtocol, SubmitRoundTripsThroughTheWire) {
  os::Request request;
  request.op = os::Op::Submit;
  request.spec.case_id = "I3";
  request.spec.seed = 42;
  request.spec.tenant = "team-a";
  request.spec.priority = 2;
  request.spec.solver = "ilp";
  request.spec.ilp_limit_s = 3.5;
  request.spec.time_limit_s = 1.0;
  request.wait = true;
  const os::Request parsed = parse(os::to_json_line(request));
  EXPECT_EQ(parsed.op, os::Op::Submit);
  EXPECT_EQ(parsed.spec.case_id, "I3");
  EXPECT_EQ(parsed.spec.seed, 42u);
  EXPECT_EQ(parsed.spec.tenant, "team-a");
  EXPECT_EQ(parsed.spec.priority, 2);
  // The parser canonicalizes solver aliases so aliased submits share
  // one job identity.
  EXPECT_EQ(parsed.spec.solver, "ilp-exact");
  EXPECT_EQ(parsed.spec.ilp_limit_s, 3.5);
  EXPECT_EQ(parsed.spec.time_limit_s, 1.0);
  EXPECT_TRUE(parsed.wait);
}

TEST(ServeProtocol, PortfolioSubmitRoundTripsCanonicalized) {
  os::Request request;
  request.op = os::Op::Submit;
  request.spec.solver = "portfolio";
  request.spec.portfolio_order = "lr,ilp";
  request.spec.portfolio_lanes = 2;
  const os::Request parsed = parse(os::to_json_line(request));
  EXPECT_EQ(parsed.spec.solver, "portfolio");
  EXPECT_EQ(parsed.spec.portfolio_order, "lr,ilp-exact");
  EXPECT_EQ(parsed.spec.portfolio_lanes, 2u);

  // Members are validated at the protocol boundary like any field.
  EXPECT_THROW(parse(R"({"op":"submit","portfolio_order":"lr,cp-sat"})"),
               ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","portfolio_order":"lr,lr"})"),
               ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","portfolio_order":"portfolio"})"),
               ou::CheckError);
}

TEST(ServeProtocol, CustomGeneratorSubmitRoundTrips) {
  os::Request request;
  request.op = os::Op::Submit;
  request.spec.groups = 12;
  request.spec.bits_lo = 3;
  request.spec.bits_hi = 6;
  const os::Request parsed = parse(os::to_json_line(request));
  EXPECT_EQ(parsed.spec.groups, 12u);
  EXPECT_EQ(parsed.spec.bits_lo, 3u);
  EXPECT_EQ(parsed.spec.bits_hi, 6u);
}

TEST(ServeProtocol, ResponseRoundTripsWithRecordAndStats) {
  os::Response response;
  response.ok = true;
  response.op = "result";
  response.job = 7;
  response.state = "done";
  response.cached = true;
  response.key = "I1/7/lr-0000000000000000";
  response.has_record = true;
  response.record.case_id = "I1";
  response.record.seed = 7;
  response.record.options = "lr-0000000000000000";
  response.record.solver = "lr";
  const os::Response parsed = os::parse_response(os::to_json_line(response));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.job, 7u);
  EXPECT_TRUE(parsed.cached);
  ASSERT_TRUE(parsed.has_record);
  EXPECT_EQ(parsed.record, response.record);
}

// -- parser rejection paths ------------------------------------------------

TEST(ServeProtocol, RejectsMalformedFrames) {
  EXPECT_THROW(parse("not json"), ou::CheckError);
  EXPECT_THROW(parse("[1,2,3]"), ou::CheckError);
  EXPECT_THROW(parse("{}"), ou::CheckError);                  // no op
  EXPECT_THROW(parse(R"({"op":"fly"})"), ou::CheckError);     // unknown op
  EXPECT_THROW(parse(R"({"op":"status","bogus":1})"),         // unknown member
               ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"status","case":"I1"})"),       // submit-only
               ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","seed":-1})"), ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","seed":1.5})"), ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","seed":1e300})"),      // > 2^53
               ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","solver":"cp-sat"})"), ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","bits_lo":5,"bits_hi":2})"),
               ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","tenant":""})"), ou::CheckError);
  EXPECT_THROW(parse(R"({"op":"submit","ilp_limit_s":-2})"), ou::CheckError);
  EXPECT_THROW(parse(std::string(R"({"op":"submit","case":")") +
                     std::string(os::kMaxFrameBytes, 'x') + R"("})"),
               ou::CheckError);  // over the frame limit
}

// -- handle_line under seeded corruption -----------------------------------

TEST(ServeProtocol, HandleLineAnswersEveryCorruptFrameStructurally) {
  os::ServerConfig config;
  config.workers = 1;
  os::Server server(config);

  // Base frames: cheap ops plus a submit whose job is trivial, so the
  // rare mangle that stays valid JSON still costs nothing.
  const std::vector<std::string> bases = {
      R"({"op":"status","job":3})",
      R"({"op":"stats"})",
      R"({"op":"result","job":1})",
      R"({"op":"cancel","job":2})",
      R"({"op":"submit","groups":1,"bits_lo":2,"bits_hi":2,"seed":1})",
  };
  ou::Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    const std::string& base = bases[static_cast<std::size_t>(
        round % static_cast<int>(bases.size()))];
    const std::string mangled =
        operon::benchgen::corrupt_frame(base, os::kMaxFrameBytes + 1, rng);
    std::string reply;
    ASSERT_NO_THROW(reply = server.handle_line(mangled))
        << "frame: " << mangled.substr(0, 120);
    // Whatever happened, the reply is one well-formed response line.
    os::Response response;
    ASSERT_NO_THROW(response = os::parse_response(reply))
        << "reply: " << reply.substr(0, 200);
    if (!response.ok) {
      EXPECT_FALSE(response.error.empty());
    }
  }
  server.shutdown(/*cancel_running=*/true);
}

// -- socket-level abuse ----------------------------------------------------

class ServeSocketTest : public testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = testing::TempDir() + "serve_protocol_test.sock";
    os::ServerConfig config;
    config.workers = 1;
    server_ = std::make_unique<os::Server>(config);
    socket_ = std::make_unique<os::SocketServer>(*server_, socket_path_);
    acceptor_ = std::thread([this] { socket_->run(); });
  }

  void TearDown() override {
    server_->shutdown(/*cancel_running=*/true);
    socket_->stop();
    acceptor_.join();
    socket_.reset();
    server_.reset();
  }

  std::string socket_path_;
  std::unique_ptr<os::Server> server_;
  std::unique_ptr<os::SocketServer> socket_;
  std::thread acceptor_;
};

TEST_F(ServeSocketTest, GarbageBytesGetStructuredErrors) {
  os::Client client(socket_path_);
  const std::string reply = client.call_line("\x01\x02{{{]]]garbage");
  const os::Response response = os::parse_response(reply);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad-request");

  // The same connection keeps working after a bad frame.
  os::Request stats;
  stats.op = os::Op::Stats;
  EXPECT_TRUE(client.call(stats).ok);
}

TEST_F(ServeSocketTest, UnterminatedOversizedFrameIsCutOff) {
  os::Client client(socket_path_);
  // More than kMaxFrameBytes without a newline: the daemon answers
  // frame-too-large and closes this connection...
  const std::string reply =
      client.call_line(std::string(os::kMaxFrameBytes + 64, 'a'));
  const os::Response response = os::parse_response(reply);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "frame-too-large");

  // ...but keeps serving fresh connections.
  os::Client fresh(socket_path_);
  os::Request stats;
  stats.op = os::Op::Stats;
  EXPECT_TRUE(fresh.call(stats).ok);
}

TEST_F(ServeSocketTest, MidFrameDisconnectDoesNotWedgeTheDaemon) {
  // Raw socket: send half a frame (no newline) and vanish.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  ASSERT_LT(socket_path_.size(), sizeof(address.sun_path));
  std::memcpy(address.sun_path, socket_path_.c_str(),
              socket_path_.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0);
  ASSERT_GT(::send(fd, "{\"op\":\"sta", 10, 0), 0);
  ::close(fd);

  os::Client client(socket_path_);
  os::Request stats;
  stats.op = os::Op::Stats;
  EXPECT_TRUE(client.call(stats).ok);
}

// -- client retry / EINTR -------------------------------------------------

/// Bare AF_UNIX listener for scripted failure injection: accept one
/// connection, run `script(fd)`, close. Lets the tests fail the wire at
/// exact points (before/after the first response byte) that a real
/// daemon never would.
class ScriptedListener {
 public:
  explicit ScriptedListener(std::string path) : path_(std::move(path)) {
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, path_.c_str(), path_.size() + 1);
    (void)::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
                 sizeof(address));
    (void)::listen(listen_fd_, 8);
  }
  ~ScriptedListener() {
    for (std::thread& t : threads_) t.join();
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
  /// Accept the next connection on a background thread and run the
  /// script on its fd (the script must NOT close the fd).
  void next(std::function<void(int)> script) {
    threads_.emplace_back([this, script = std::move(script)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      script(fd);
      ::close(fd);
    });
  }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::vector<std::thread> threads_;
};

void drain_one_line(int fd) {
  char chunk[4096];
  std::string seen;
  while (seen.find('\n') == std::string::npos) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return;
    seen.append(chunk, static_cast<std::size_t>(got));
  }
}

TEST(ClientRetry, ExhaustedConnectRetriesThrowWithAttemptCount) {
  os::RetryPolicy policy;
  policy.retries = 2;
  policy.backoff_ms = 1;
  try {
    os::Client client(testing::TempDir() + "serve_retry_nobody.sock",
                      policy);
    FAIL() << "connect to an unbound path must throw";
  } catch (const ou::CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("3 attempt(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("is operon_serve running?"), std::string::npos);
  }
}

TEST(ClientRetry, BackoffSurvivesALateDaemon) {
  const std::string path = testing::TempDir() + "serve_retry_late.sock";
  ::unlink(path.c_str());
  os::ServerConfig config;
  config.workers = 1;
  os::Server server(config);
  std::unique_ptr<os::SocketServer> socket;
  std::thread daemon([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    socket = std::make_unique<os::SocketServer>(server, path);
    socket->run();
  });
  os::RetryPolicy policy;
  policy.retries = 100;
  policy.backoff_ms = 5;
  policy.backoff_max_ms = 20;
  os::Client client(path, policy);  // blocks through refused connects
  EXPECT_GE(client.retries_used(), 1u);
  os::Request stats;
  stats.op = os::Op::Stats;
  EXPECT_TRUE(client.call(stats).ok);
  server.shutdown(/*cancel_running=*/true);
  socket->stop();
  daemon.join();
}

TEST(ClientRetry, DisconnectBeforeFirstResponseByteIsRetried) {
  const std::string path = testing::TempDir() + "serve_retry_prebyte.sock";
  ScriptedListener listener(path);
  // First connection: swallow the request, answer nothing (the daemon
  // died before executing — provably safe to re-send).
  listener.next([](int fd) {
    char chunk[4096];
    (void)::recv(fd, chunk, sizeof(chunk), 0);
  });
  // Second connection: serve the response.
  listener.next([](int fd) {
    drain_one_line(fd);
    const std::string reply = "{\"ok\":true}\n";
    (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
  });
  os::RetryPolicy policy;
  policy.retries = 3;
  policy.backoff_ms = 1;
  os::Client client(path, policy);
  const std::string line = client.call_line(R"({"op":"stats"})");
  EXPECT_TRUE(os::parse_response(line).ok);
  EXPECT_EQ(client.retries_used(), 1u);
}

TEST(ClientRetry, DisconnectAfterFirstResponseByteNeverRetries) {
  const std::string path = testing::TempDir() + "serve_retry_midframe.sock";
  ScriptedListener listener(path);
  // Send HALF a response, then hang up: the daemon may have executed a
  // non-idempotent op, so the client MUST surface the failure instead
  // of re-sending — even with retry budget to spare.
  listener.next([](int fd) {
    drain_one_line(fd);
    (void)::send(fd, "{\"ok\":tr", 8, MSG_NOSIGNAL);
  });
  os::RetryPolicy policy;
  policy.retries = 5;
  policy.backoff_ms = 1;
  os::Client client(path, policy);
  try {
    (void)client.call_line(R"({"op":"shutdown"})");
    FAIL() << "mid-response disconnect must throw";
  } catch (const ou::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("mid-response"),
              std::string::npos)
        << error.what();
  }
  EXPECT_EQ(client.retries_used(), 0u);
}

namespace {
void ignore_signal(int) {}
}  // namespace

TEST_F(ServeSocketTest, RequestSurvivesSignalStorm) {
  // EINTR coverage: pepper the client thread with a no-SA_RESTART
  // signal while it is blocked in recv waiting for a slow job. Both
  // sides share the EINTR-retrying recv/send helpers, so the exchange
  // must complete as if no signal landed.
  struct sigaction action{};
  struct sigaction saved{};
  action.sa_handler = ignore_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately NOT SA_RESTART: recv returns EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

  std::atomic<bool> done{false};
  os::Response response;
  std::thread requester([&] {
    os::Client client(socket_path_);
    os::Request submit;
    submit.op = os::Op::Submit;
    submit.spec.groups = 30;
    submit.spec.bits_lo = 2;
    submit.spec.bits_hi = 6;
    submit.spec.seed = 6;
    submit.wait = true;
    response = client.call(submit);
    done.store(true);
  });
  while (!done.load()) {
    pthread_kill(requester.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  requester.join();
  ASSERT_EQ(sigaction(SIGUSR1, &saved, nullptr), 0);
  ASSERT_TRUE(response.ok) << response.error << ": " << response.detail;
  EXPECT_EQ(response.state, "done");
}

TEST_F(ServeSocketTest, FullJobLifecycleOverTheSocket) {
  os::Client client(socket_path_);
  os::Request submit;
  submit.op = os::Op::Submit;
  submit.spec.groups = 3;
  submit.spec.bits_lo = 2;
  submit.spec.bits_hi = 3;
  submit.spec.seed = 5;
  submit.wait = true;
  const os::Response done = client.call(submit);
  ASSERT_TRUE(done.ok) << done.error << ": " << done.detail;
  EXPECT_EQ(done.state, "done");
  ASSERT_TRUE(done.has_record);
  EXPECT_EQ(done.record.seed, 5u);

  os::Request result;
  result.op = os::Op::Result;
  result.job = done.job;
  const os::Response fetched = client.call(result);
  ASSERT_TRUE(fetched.ok);
  EXPECT_TRUE(fetched.has_record);
  EXPECT_TRUE(operon::obs::semantic_equal(fetched.record, done.record));
}

}  // namespace
