// Cross-substrate consistency checks: the same problem solved through
// two independent code paths must agree. These catch subtle solver bugs
// that single-module unit tests cannot.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "flow/mcmf.hpp"
#include "ilp/bnb.hpp"
#include "ilp/simplex.hpp"
#include "util/rng.hpp"

namespace of = operon::flow;
namespace oi = operon::ilp;

namespace {

/// Build a random transportation instance; return (supply, demand, cost).
struct Transportation {
  std::size_t sources;
  std::size_t sinks;
  std::vector<std::int64_t> supply;
  std::vector<std::int64_t> demand;
  std::vector<double> cost;  // sources x sinks

  double cost_at(std::size_t i, std::size_t j) const {
    return cost[i * sinks + j];
  }
};

Transportation random_transportation(operon::util::Rng& rng) {
  Transportation t;
  t.sources = 3 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  t.sinks = 3 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  t.supply.resize(t.sources);
  t.demand.resize(t.sinks);
  // Balanced instance.
  std::int64_t total = 0;
  for (auto& s : t.supply) {
    s = rng.uniform_int(1, 9);
    total += s;
  }
  std::int64_t remaining = total;
  for (std::size_t j = 0; j + 1 < t.sinks; ++j) {
    t.demand[j] = rng.uniform_int(0, remaining);
    remaining -= t.demand[j];
  }
  t.demand[t.sinks - 1] = remaining;
  t.cost.resize(t.sources * t.sinks);
  for (auto& c : t.cost) c = rng.uniform(0.0, 10.0);
  return t;
}

}  // namespace

// MCMF and the LP (simplex) must find the same optimal transportation
// cost: two completely independent optimality proofs.
TEST(CrossCheck, TransportationMcmfEqualsSimplex) {
  operon::util::Rng rng(1234);
  for (int trial = 0; trial < 12; ++trial) {
    const Transportation t = random_transportation(rng);

    // MCMF formulation.
    of::MinCostMaxFlow graph(2 + t.sources + t.sinks);
    std::int64_t total = 0;
    for (std::size_t i = 0; i < t.sources; ++i) {
      graph.add_edge(0, 2 + i, t.supply[i], 0.0);
      total += t.supply[i];
    }
    for (std::size_t j = 0; j < t.sinks; ++j) {
      graph.add_edge(2 + t.sources + j, 1, t.demand[j], 0.0);
    }
    for (std::size_t i = 0; i < t.sources; ++i) {
      for (std::size_t j = 0; j < t.sinks; ++j) {
        graph.add_edge(2 + i, 2 + t.sources + j,
                       std::min(t.supply[i], t.demand[j]), t.cost_at(i, j));
      }
    }
    const auto flow_result = graph.solve(0, 1);
    ASSERT_EQ(flow_result.max_flow, total) << "trial " << trial;

    // LP formulation: min sum c_ij x_ij, row sums = supply, col sums =
    // demand, x >= 0.
    oi::Model model;
    oi::LinearExpr objective;
    std::vector<std::vector<std::size_t>> x(t.sources,
                                            std::vector<std::size_t>(t.sinks));
    for (std::size_t i = 0; i < t.sources; ++i) {
      for (std::size_t j = 0; j < t.sinks; ++j) {
        x[i][j] = model.add_continuous(0.0, 1e6);
        objective.push_back({x[i][j], t.cost_at(i, j)});
      }
    }
    for (std::size_t i = 0; i < t.sources; ++i) {
      oi::LinearExpr row;
      for (std::size_t j = 0; j < t.sinks; ++j) row.push_back({x[i][j], 1.0});
      model.add_constraint(std::move(row), oi::Relation::Equal,
                           static_cast<double>(t.supply[i]));
    }
    for (std::size_t j = 0; j < t.sinks; ++j) {
      oi::LinearExpr col;
      for (std::size_t i = 0; i < t.sources; ++i) col.push_back({x[i][j], 1.0});
      model.add_constraint(std::move(col), oi::Relation::Equal,
                           static_cast<double>(t.demand[j]));
    }
    model.set_objective(std::move(objective), oi::Sense::Minimize);
    const auto lp = oi::solve_lp(model);
    ASSERT_EQ(lp.status, oi::LpStatus::Optimal) << "trial " << trial;

    EXPECT_NEAR(flow_result.total_cost, lp.objective, 1e-6)
        << "trial " << trial;
  }
}

// Simplex optimality probe: no sampled feasible point beats the optimum.
TEST(CrossCheck, SimplexBeatsRandomFeasiblePoints) {
  operon::util::Rng rng(4321);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4;
    oi::Model model;
    oi::LinearExpr objective;
    for (std::size_t v = 0; v < n; ++v) {
      model.add_continuous(0.0, 5.0);
      objective.push_back({v, rng.uniform(-3.0, 3.0)});
    }
    for (int r = 0; r < 3; ++r) {
      oi::LinearExpr expr;
      for (std::size_t v = 0; v < n; ++v) {
        expr.push_back({v, rng.uniform(0.0, 2.0)});
      }
      model.add_constraint(std::move(expr), oi::Relation::LessEq,
                           rng.uniform(4.0, 12.0));
    }
    model.set_objective(objective, oi::Sense::Minimize);
    const auto lp = oi::solve_lp(model);
    ASSERT_EQ(lp.status, oi::LpStatus::Optimal);
    EXPECT_TRUE(model.is_feasible(lp.values, 1e-6));

    for (int probe = 0; probe < 300; ++probe) {
      std::vector<double> point(n);
      for (auto& value : point) value = rng.uniform(0.0, 5.0);
      if (!model.is_feasible(point, 1e-9)) continue;
      EXPECT_GE(model.evaluate_objective(point), lp.objective - 1e-6);
    }
  }
}

// B&B on relaxable instances: MIP optimum >= LP optimum (minimization),
// equal when the LP solution is integral.
TEST(CrossCheck, MipBoundedByLpRelaxation) {
  operon::util::Rng rng(5678);
  for (int trial = 0; trial < 10; ++trial) {
    oi::Model model;
    oi::LinearExpr objective;
    for (int v = 0; v < 8; ++v) {
      model.add_binary();
      objective.push_back({static_cast<std::size_t>(v), rng.uniform(0.5, 5.0)});
    }
    oi::LinearExpr cover;
    for (int v = 0; v < 8; ++v) {
      cover.push_back({static_cast<std::size_t>(v), 1.0});
    }
    model.add_constraint(std::move(cover), oi::Relation::GreaterEq, 3.0);
    model.set_objective(std::move(objective), oi::Sense::Minimize);

    const auto lp = oi::solve_lp(model);
    const auto mip = oi::solve_mip(model);
    ASSERT_EQ(lp.status, oi::LpStatus::Optimal);
    ASSERT_EQ(mip.status, oi::MipStatus::Optimal);
    EXPECT_GE(mip.objective, lp.objective - 1e-9);
    EXPECT_TRUE(model.is_feasible(mip.values));
  }
}

// -- selection differential harness ---------------------------------------
//
// ~50 seeded small instances: exhaustive enumeration over the candidate
// product, the specialized exact branch-and-bound, and the literal
// Formulation-(3) MIP must agree on the optimal selection power; the LR
// surrogate must stay feasible and sandwiched between the optimum and a
// loose factor of it. Run both at the default loss budget and at a
// deliberately tight one (post-degradation: many candidates pruned, some
// nets electrical-only) — the degraded regime must stay consistent too.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "codesign/selection.hpp"
#include "lr/lr.hpp"

namespace ocd = operon::codesign;
namespace om = operon::model;

namespace {

om::Design tiny_design(std::uint64_t seed) {
  operon::benchgen::BenchmarkSpec spec;
  spec.name = "xc" + std::to_string(seed);
  spec.num_groups = 3 + seed % 3;
  spec.bits_lo = 1;
  spec.bits_hi = 2;
  spec.seed = 7000 + seed;
  return operon::benchgen::generate_benchmark(spec);
}

std::vector<ocd::CandidateSet> tiny_sets(const om::Design& design,
                                         const om::TechParams& params) {
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  ocd::GenerationOptions generation;
  generation.max_candidates_per_net = 3;  // keeps the product enumerable
  return ocd::generate_candidates(design, nets.hyper_nets, params, generation);
}

/// Exhaustive optimum over the full candidate product (clean selections
/// only; the all-electrical choice guarantees one exists).
double brute_force_power(const ocd::SelectionEvaluator& evaluator) {
  ocd::Selection selection(evaluator.num_nets(), 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    if (evaluator.violations(selection).clean()) {
      best = std::min(best, evaluator.total_power(selection));
    }
    // Odometer increment over the candidate product.
    std::size_t i = 0;
    for (; i < evaluator.num_nets(); ++i) {
      if (++selection[i] < evaluator.set(i).options.size()) break;
      selection[i] = 0;
    }
    if (i == evaluator.num_nets()) break;
  }
  return best;
}

void differential_selection_check(const om::TechParams& params,
                                  std::uint64_t seed) {
  const om::Design design = tiny_design(seed);
  const auto sets = tiny_sets(design, params);
  const ocd::SelectionEvaluator evaluator(sets, params);

  std::size_t combos = 1;
  for (const auto& set : sets) combos *= set.options.size();
  if (combos > 100000) GTEST_SKIP() << "instance unexpectedly large";

  const double brute = brute_force_power(evaluator);
  ASSERT_TRUE(std::isfinite(brute));

  const auto exact = ocd::solve_selection_exact(sets, params);
  ASSERT_TRUE(exact.proven_optimal);
  EXPECT_TRUE(exact.violations.clean());
  EXPECT_NEAR(exact.power_pj, brute, 1e-6);

  const auto mip = ocd::solve_selection_mip(sets, params);
  if (mip.proven_optimal) {
    EXPECT_NEAR(mip.power_pj, brute, 1e-6);
    EXPECT_TRUE(mip.violations.clean());
  }

  const auto lr = operon::lr::solve_selection_lr(sets, params);
  EXPECT_TRUE(lr.violations.clean());
  EXPECT_GE(lr.power_pj, brute - 1e-9);
  EXPECT_LE(lr.power_pj, brute * 2.0 + 1e-9);
}

}  // namespace

TEST(CrossCheck, SelectionSolversAgreeOnSmallInstances) {
  const om::TechParams params = om::TechParams::dac18_defaults();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    differential_selection_check(params, seed);
  }
}

TEST(CrossCheck, SelectionSolversAgreePostDegradation) {
  // A tight loss budget prunes most optical labelings (some nets keep
  // only a_ie): the degraded candidate space must stay consistent across
  // all three solvers and the enumeration.
  om::TechParams params = om::TechParams::dac18_defaults();
  params.optical.max_loss_db = 1.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    differential_selection_check(params, seed);
  }
}
