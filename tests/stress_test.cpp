// Randomized end-to-end stress: many small designs with varied structure
// pushed through the full pipeline, asserting only the system-level
// invariants. Catches crashes and invariant breaks in configurations no
// hand-written test enumerates.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "benchgen/benchgen.hpp"
#include "util/rng.hpp"
#include "wdm/wavelength.hpp"

namespace ocore = operon::core;

TEST(Stress, RandomPipelines) {
  operon::util::Rng rng(31415);
  for (int trial = 0; trial < 14; ++trial) {
    operon::benchgen::BenchmarkSpec spec;
    spec.name = "stress" + std::to_string(trial);
    spec.num_groups = 4 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    spec.bits_lo = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    spec.bits_hi = spec.bits_lo + static_cast<std::size_t>(rng.uniform_int(0, 20));
    spec.sink_blocks_lo = 1;
    spec.sink_blocks_hi = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    spec.min_span_um = rng.uniform(1200.0, 3000.0);
    spec.max_span_um = spec.min_span_um + rng.uniform(1000.0, 6000.0);
    spec.block_size_um = rng.uniform(50.0, 400.0);
    spec.seed = 10000 + static_cast<std::uint64_t>(trial);

    const auto design = operon::benchgen::generate_benchmark(spec);
    ocore::OperonOptions options;
    options.solver = rng.bernoulli(0.5) ? ocore::SolverKind::Lr
                                        : ocore::SolverKind::IlpExact;
    options.select.time_limit_s = 5.0;
    options.params.optical.max_loss_db = rng.uniform(4.0, 24.0);

    const auto result = ocore::run_operon(design, options);
    SCOPED_TRACE("trial " + std::to_string(trial));

    // System invariants, regardless of configuration:
    ASSERT_EQ(result.selection.size(), result.sets.size());
    EXPECT_TRUE(result.violations.clean());
    EXPECT_GT(result.stats.power_pj, 0.0);
    EXPECT_EQ(result.stats.optical_nets + result.stats.electrical_nets,
              result.sets.size());
    // WDM plan consistent: final <= initial <= connections (per-WDM
    // sharing can only reduce), all channels allocated.
    EXPECT_LE(result.wdm_plan.final_wdms, result.wdm_plan.initial_wdms);
    EXPECT_LE(result.wdm_plan.initial_wdms,
              result.wdm_plan.connections.size());
    EXPECT_TRUE(result.wdm_plan.feasible);
    std::size_t alloc_bits = 0, conn_bits = 0;
    for (const auto& alloc : result.wdm_plan.allocations) {
      alloc_bits += alloc.bits;
    }
    for (const auto& conn : result.wdm_plan.connections) {
      conn_bits += conn.bits;
    }
    EXPECT_EQ(alloc_bits, conn_bits);
    // Wavelength assignment always succeeds on a feasible plan.
    const auto wavelengths = operon::wdm::assign_wavelengths(
        result.wdm_plan, options.params.optical);
    EXPECT_TRUE(wavelengths.feasible);
    EXPECT_TRUE(operon::wdm::wavelengths_valid(result.wdm_plan, wavelengths,
                                               options.params.optical));
  }
}
