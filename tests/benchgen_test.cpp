// Tests for the synthetic benchmark generator: determinism, validity,
// and that the five Table 1 cases land near the paper's #Net / #HNet /
// #HPin statistics after the real signal-processing stage.

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "util/check.hpp"
#include "model/params.hpp"

namespace obg = operon::benchgen;
namespace om = operon::model;

TEST(BenchGen, DeterministicForSeed) {
  obg::BenchmarkSpec spec;
  spec.num_groups = 20;
  spec.seed = 5;
  const om::Design a = obg::generate_benchmark(spec);
  const om::Design b = obg::generate_benchmark(spec);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    ASSERT_EQ(a.groups[g].bits.size(), b.groups[g].bits.size());
    EXPECT_EQ(a.groups[g].bits[0].source.location,
              b.groups[g].bits[0].source.location);
  }
}

TEST(BenchGen, GeneratedDesignValidates) {
  obg::BenchmarkSpec spec;
  spec.num_groups = 50;
  spec.sink_blocks_hi = 3;
  spec.bits_hi = 12;
  EXPECT_NO_THROW(obg::generate_benchmark(spec).validate());
}

TEST(BenchGen, SpanRespected) {
  obg::BenchmarkSpec spec;
  spec.num_groups = 30;
  spec.min_span_um = 5000.0;
  spec.max_span_um = 9000.0;
  const om::Design design = obg::generate_benchmark(spec);
  for (const auto& group : design.groups) {
    // Block centers were >= min_span apart; pins jitter by <= block size,
    // so pin distance is at least min_span - 2*jitter.
    const auto& bit = group.bits[0];
    EXPECT_GE(operon::geom::euclidean(bit.source.location,
                                      bit.sinks[0].location),
              spec.min_span_um - 2.0 * spec.block_size_um);
  }
}

TEST(BenchGen, UnsatisfiableSpanRejectedNotHung) {
  obg::BenchmarkSpec spec;
  spec.chip_um = 6000;
  spec.min_span_um = 8000;
  spec.max_span_um = 9000;
  spec.num_groups = 1;
  EXPECT_THROW(obg::generate_benchmark(spec), operon::util::CheckError);
}

TEST(BenchGen, UnknownCaseRejected) {
  EXPECT_THROW(obg::table1_spec("I9"), operon::util::CheckError);
}

TEST(BenchGen, FiveCasesListed) {
  const auto cases = obg::table1_cases();
  ASSERT_EQ(cases.size(), 5u);
  EXPECT_EQ(cases.front(), "I1");
  EXPECT_EQ(cases.back(), "I5");
}

struct CaseStats {
  const char* id;
  std::size_t nets;   // paper "#Net"
  std::size_t hnets;  // paper "#HNet"
  std::size_t hpins;  // paper "#HPin"
};

class Table1Cases : public ::testing::TestWithParam<CaseStats> {};

TEST_P(Table1Cases, StatisticsTrackPaper) {
  const CaseStats expected = GetParam();
  const om::Design design =
      obg::generate_benchmark(obg::table1_spec(expected.id));
  design.validate();

  operon::cluster::SignalProcessingOptions processing;
  processing.kmeans.capacity = static_cast<std::size_t>(
      om::TechParams::dac18_defaults().optical.wdm_capacity);
  const auto result = operon::cluster::build_hyper_nets(design, processing);

  // Within 15% of the paper's statistics (the paper's absolute numbers
  // come from proprietary netlists; we reproduce the regime).
  const auto near = [](std::size_t actual, std::size_t target) {
    const double ratio =
        static_cast<double>(actual) / static_cast<double>(target);
    return ratio > 0.85 && ratio < 1.15;
  };
  EXPECT_TRUE(near(design.num_bits(), expected.nets))
      << expected.id << ": #Net " << design.num_bits() << " vs "
      << expected.nets;
  EXPECT_TRUE(near(result.num_hyper_nets(), expected.hnets))
      << expected.id << ": #HNet " << result.num_hyper_nets() << " vs "
      << expected.hnets;
  EXPECT_TRUE(near(result.num_hyper_pins(), expected.hpins))
      << expected.id << ": #HPin " << result.num_hyper_pins() << " vs "
      << expected.hpins;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table1Cases,
    ::testing::Values(CaseStats{"I1", 2660, 356, 1306},
                      CaseStats{"I2", 1782, 837, 1701},
                      CaseStats{"I3", 5072, 168, 336},
                      CaseStats{"I4", 3224, 403, 1474},
                      CaseStats{"I5", 1994, 933, 1897}),
    [](const auto& info) { return info.param.id; });
