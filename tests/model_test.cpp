// Tests for the design model: parameters (Eq. 1/6 units), design
// validation, text round-trip I/O, hyper net/pin invariants.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "model/design.hpp"
#include "model/diagnostic.hpp"
#include "model/hyper.hpp"
#include "model/params.hpp"
#include "util/check.hpp"

namespace om = operon::model;

namespace {

om::Design small_design() {
  om::Design design;
  design.name = "tiny";
  design.chip = operon::geom::BBox::of({0, 0}, {10000, 10000});
  om::SignalGroup group;
  group.name = "bus0";
  for (int b = 0; b < 3; ++b) {
    om::SignalBit bit;
    bit.source = {{100.0 + b, 100.0}, om::PinRole::Source};
    bit.sinks.push_back({{9000.0 + b, 9000.0}, om::PinRole::Sink});
    bit.sinks.push_back({{9000.0 + b, 500.0}, om::PinRole::Sink});
    group.bits.push_back(std::move(bit));
  }
  design.groups.push_back(std::move(group));
  return design;
}

}  // namespace

TEST(Params, Dac18Defaults) {
  const om::TechParams params = om::TechParams::dac18_defaults();
  EXPECT_TRUE(params.valid());
  EXPECT_DOUBLE_EQ(params.optical.alpha_db_per_um * 1e4, 1.5);  // 1.5 dB/cm
  EXPECT_DOUBLE_EQ(params.optical.beta_db_per_crossing, 0.52);
  EXPECT_DOUBLE_EQ(params.optical.pmod_pj_per_bit, 0.511);
  EXPECT_DOUBLE_EQ(params.optical.pdet_pj_per_bit, 0.374);
  EXPECT_EQ(params.optical.wdm_capacity, 32);
}

TEST(Params, ElectricalEnergyScalesLinearly) {
  const om::ElectricalParams ep;
  const double e1 = ep.energy_pj_per_bit(1000.0);
  const double e2 = ep.energy_pj_per_bit(2000.0);
  EXPECT_GT(e1, 0.0);
  EXPECT_DOUBLE_EQ(e2, 2.0 * e1);
  EXPECT_DOUBLE_EQ(ep.energy_pj_per_bit(0.0), 0.0);
}

TEST(Params, OpticalBeatsElectricalAtDistance) {
  // The optical-vs-electrical crossover: at 1 cm, a wire costs more than
  // one EO+OE conversion pair; at 1 mm it costs less. This calibration is
  // what makes the co-design trade-off (and Table 1's shape) non-trivial.
  const om::TechParams p = om::TechParams::dac18_defaults();
  const double conv =
      p.optical.pmod_pj_per_bit + p.optical.pdet_pj_per_bit;
  EXPECT_GT(p.electrical.energy_pj_per_bit(10000.0), conv);
  EXPECT_LT(p.electrical.energy_pj_per_bit(1000.0), conv);
}

TEST(Params, InvalidDetected) {
  om::OpticalParams op;
  op.wdm_capacity = 0;
  EXPECT_FALSE(op.valid());
  om::ElectricalParams ep;
  ep.voltage_v = 0.0;
  EXPECT_FALSE(ep.valid());
}

TEST(Design, CountsAndCentroid) {
  const om::Design design = small_design();
  EXPECT_EQ(design.num_bits(), 3u);
  EXPECT_EQ(design.num_pins(), 9u);
  const om::SignalBit& bit = design.groups[0].bits[0];
  const auto c = bit.centroid();
  EXPECT_NEAR(c.x, (100.0 + 9000.0 + 9000.0) / 3.0, 1e-9);
}

TEST(Design, ValidatePasses) {
  EXPECT_NO_THROW(small_design().validate());
}

TEST(Design, ValidateCatchesOffChipPin) {
  om::Design design = small_design();
  design.groups[0].bits[0].sinks[0].location = {99999, 99999};
  EXPECT_THROW(design.validate(), operon::util::CheckError);
}

TEST(Design, ValidateCatchesEmptyGroup) {
  om::Design design = small_design();
  design.groups[0].bits.clear();
  EXPECT_THROW(design.validate(), operon::util::CheckError);
}

TEST(DesignIo, RoundTrip) {
  const om::Design design = small_design();
  std::stringstream ss;
  om::write_design(ss, design);
  const om::Design back = om::read_design(ss);
  EXPECT_EQ(back.name, design.name);
  ASSERT_EQ(back.groups.size(), 1u);
  EXPECT_EQ(back.groups[0].name, "bus0");
  ASSERT_EQ(back.groups[0].bits.size(), 3u);
  EXPECT_EQ(back.groups[0].bits[1].sinks.size(), 2u);
  EXPECT_DOUBLE_EQ(back.groups[0].bits[2].source.location.x, 102.0);
  EXPECT_NO_THROW(back.validate());
}

TEST(DesignIo, CommentsAndBlanksIgnored) {
  std::stringstream ss;
  ss << "# a comment\n\n"
     << "design d\n"
     << "chip 0 0 10 10\n"
     << "group g\n"
     << "bit S 1 1 T 2 2\n";
  const om::Design design = om::read_design(ss);
  EXPECT_EQ(design.groups[0].bits.size(), 1u);
}

TEST(DesignIo, RejectsBitBeforeGroup) {
  std::stringstream ss;
  ss << "chip 0 0 10 10\nbit S 1 1 T 2 2\n";
  EXPECT_THROW(om::read_design(ss), operon::util::CheckError);
}

TEST(DesignIo, RejectsTwoSources) {
  std::stringstream ss;
  ss << "chip 0 0 10 10\ngroup g\nbit S 1 1 S 2 2 T 3 3\n";
  EXPECT_THROW(om::read_design(ss), operon::util::CheckError);
}

TEST(DesignIo, RejectsUnknownKeyword) {
  std::stringstream ss;
  ss << "nonsense 1 2 3\n";
  EXPECT_THROW(om::read_design(ss), operon::util::CheckError);
}

TEST(HyperPin, GravityCenterAndSource) {
  om::HyperPin hp;
  hp.pins.push_back({0, 0, -1, {0, 0}, om::PinRole::Source});
  hp.pins.push_back({0, 1, 0, {2, 4}, om::PinRole::Sink});
  hp.update_center();
  EXPECT_EQ(hp.center, (operon::geom::Point{1, 2}));
  EXPECT_TRUE(hp.has_source());
  hp.pins[0].role = om::PinRole::Sink;
  EXPECT_FALSE(hp.has_source());
}

TEST(HyperNet, SelectRootPicksMostSources) {
  om::HyperNet net;
  net.id = 0;
  om::HyperPin a, b;
  a.pins.push_back({0, 0, 0, {0, 0}, om::PinRole::Sink});
  b.pins.push_back({0, 0, -1, {5, 5}, om::PinRole::Source});
  b.pins.push_back({0, 1, -1, {5, 6}, om::PinRole::Source});
  a.update_center();
  b.update_center();
  net.pins = {a, b};
  net.select_root();
  EXPECT_EQ(net.root, 1u);
}

TEST(HyperNet, SelectRootThrowsWithoutSource) {
  om::HyperNet net;
  om::HyperPin a;
  a.pins.push_back({0, 0, 0, {0, 0}, om::PinRole::Sink});
  net.pins = {a};
  EXPECT_THROW(net.select_root(), operon::util::CheckError);
}

TEST(HyperNet, BBoxSpansPins) {
  om::HyperNet net;
  om::HyperPin a, b;
  a.center = {1, 2};
  b.center = {5, 9};
  a.pins.resize(1);
  b.pins.resize(1);
  net.pins = {a, b};
  const auto box = net.bbox();
  EXPECT_DOUBLE_EQ(box.xlo, 1);
  EXPECT_DOUBLE_EQ(box.yhi, 9);
}

TEST(HyperNet, ValidateCatchesDoubleCoverage) {
  const om::Design design = small_design();
  om::HyperNet net;
  net.id = 0;
  net.group = 0;
  net.bits = {0};
  om::HyperPin a, b;
  a.pins.push_back({0, 0, -1, design.groups[0].bits[0].source.location,
                    om::PinRole::Source});
  // Sink 0 covered twice; sink 1 missing.
  b.pins.push_back({0, 0, 0, design.groups[0].bits[0].sinks[0].location,
                    om::PinRole::Sink});
  b.pins.push_back({0, 0, 0, design.groups[0].bits[0].sinks[0].location,
                    om::PinRole::Sink});
  a.update_center();
  b.update_center();
  net.pins = {a, b};
  net.root = 0;
  EXPECT_THROW(net.validate(design), operon::util::CheckError);
}

// -- Diagnostic codes -------------------------------------------------

TEST(DiagCode, ClosedEnumHasUniqueKebabCaseNames) {
  std::set<std::string> seen;
  for (const om::DiagCode code : om::all_diag_codes()) {
    const std::string name{om::to_string(code)};
    ASSERT_FALSE(name.empty());
    // Wire format: lower-case kebab, as consumed by report tooling.
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-')
          << name;
    }
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_FALSE(seen.empty());
}

TEST(DiagCode, StreamInsertionUsesWireName) {
  om::Diagnostic diagnostic;
  diagnostic.severity = om::Severity::Warning;
  diagnostic.code = om::DiagCode::SolverTimeLimit;
  diagnostic.message = "hit the wall";
  std::ostringstream os;
  os << diagnostic;
  EXPECT_NE(os.str().find("solver-time-limit"), std::string::npos);
}
