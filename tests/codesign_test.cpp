// Tests for the co-design stage. The key property test checks the DP
// against brute-force enumeration of all 2^|edges| labelings: the DP's
// label state (power, open loss, open detectors) is a sufficient
// statistic, so its best candidate must match the enumerated optimum and
// its root set must cover the enumerated (power, worst-loss) Pareto
// frontier.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/hypernet_builder.hpp"
#include "codesign/assemble.hpp"
#include "codesign/crossing.hpp"
#include "codesign/dp.hpp"
#include "codesign/generate.hpp"
#include "model/params.hpp"
#include "steiner/bi1s.hpp"
#include "util/rng.hpp"

namespace oc = operon::codesign;
namespace os = operon::steiner;
namespace om = operon::model;
namespace og = operon::geom;

namespace {

const om::TechParams kParams = om::TechParams::dac18_defaults();

/// A simple 3-terminal star: root at origin, two sinks far right/up,
/// joined through a Steiner point.
os::SteinerTree star_tree() {
  os::SteinerTree tree;
  tree.points = {{0, 0}, {12000, 3000}, {12000, -3000}, {9000, 0}};
  tree.num_terminals = 3;
  tree.edges = {{0, 3}, {3, 1}, {3, 2}};
  return tree;
}

oc::AssembleContext make_ctx(const os::SteinerTree& tree,
                             const os::RootedTree& rooted,
                             std::size_t bits = 16) {
  oc::AssembleContext ctx;
  ctx.tree = &tree;
  ctx.rooted = &rooted;
  ctx.bit_count = bits;
  ctx.params = &kParams;
  return ctx;
}

}  // namespace

TEST(SegmentIndexTest, CountsAndExcludesOwnNet) {
  og::BBox chip = og::BBox::of({0, 0}, {100, 100});
  oc::SegmentIndex index(chip, 8);
  index.add(0, {{0, 50}, {100, 50}});   // horizontal, net 0
  index.add(1, {{0, 60}, {100, 60}});   // horizontal, net 1
  index.finalize();
  const og::Segment vertical{{50, 0}, {50, 100}};
  EXPECT_EQ(index.count_crossings(vertical, 99), 2u);
  EXPECT_EQ(index.count_crossings(vertical, 0), 1u);  // net-0 bar excluded
  EXPECT_EQ(index.num_segments(), 2u);
}

TEST(SegmentIndexTest, NoDoubleCountAcrossCells) {
  // A long segment spans many grid cells; the crossing must count once.
  og::BBox chip = og::BBox::of({0, 0}, {1000, 1000});
  oc::SegmentIndex index(chip, 32);
  index.add(0, {{0, 500}, {1000, 500}});
  index.finalize();
  EXPECT_EQ(index.count_crossings({{500, 0}, {500, 1000}}, 99), 1u);
}

TEST(Assemble, AllElectricalStar) {
  const os::SteinerTree tree = star_tree();
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  const auto ctx = make_ctx(tree, rooted);
  const oc::Candidate cand = oc::assemble_candidate(
      ctx, std::vector<oc::EdgeKind>(4, oc::EdgeKind::Electrical), 0);
  EXPECT_TRUE(cand.pure_electrical());
  EXPECT_EQ(cand.num_modulators, 0);
  EXPECT_EQ(cand.num_detectors, 0);
  EXPECT_TRUE(cand.paths.empty());
  const double wl = 9000.0 + (3000 + 3000) + (3000 + 3000);
  EXPECT_NEAR(cand.electrical_wl_um, wl, 1e-9);
  EXPECT_NEAR(cand.power_pj,
              16.0 * kParams.electrical.energy_pj_per_bit(wl), 1e-9);
}

TEST(Assemble, AllOpticalStar) {
  const os::SteinerTree tree = star_tree();
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  const auto ctx = make_ctx(tree, rooted);
  const oc::Candidate cand = oc::assemble_candidate(
      ctx, std::vector<oc::EdgeKind>(4, oc::EdgeKind::Optical), 0);
  EXPECT_FALSE(cand.pure_electrical());
  EXPECT_EQ(cand.num_modulators, 1);  // one component from the root
  EXPECT_EQ(cand.num_detectors, 2);   // two sinks tap off
  ASSERT_EQ(cand.paths.size(), 2u);
  // Each path: 9000 um trunk + ~3162 um arm, one 2-way split at the
  // Steiner point.
  const double arm = std::hypot(3000.0, 3000.0);
  const double expected =
      kParams.optical.alpha_db_per_um * (9000.0 + arm) +
      10.0 * std::log10(2.0);
  EXPECT_NEAR(cand.paths[0].static_loss_db, expected, 1e-6);
  EXPECT_NEAR(cand.paths[0].splitting_db, 10.0 * std::log10(2.0), 1e-9);
  EXPECT_NEAR(cand.power_pj,
              16.0 * (kParams.optical.pmod_pj_per_bit +
                      2 * kParams.optical.pdet_pj_per_bit),
              1e-9);
  ASSERT_EQ(cand.modulator_sites.size(), 1u);
  EXPECT_EQ(cand.modulator_sites[0], tree.points[0]);
  EXPECT_EQ(cand.detector_sites.size(), 2u);
}

TEST(Assemble, MixedTrunkOpticalArmsElectrical) {
  // Optical trunk to the Steiner point, electrical arms: the Steiner
  // point needs a detector (it feeds electrical children); 1 mod + 1 det.
  const os::SteinerTree tree = star_tree();
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  const auto ctx = make_ctx(tree, rooted);
  std::vector<oc::EdgeKind> kinds(4, oc::EdgeKind::Electrical);
  kinds[3] = oc::EdgeKind::Optical;  // root -> steiner
  const oc::Candidate cand = oc::assemble_candidate(ctx, kinds, 0);
  EXPECT_EQ(cand.num_modulators, 1);
  EXPECT_EQ(cand.num_detectors, 1);
  ASSERT_EQ(cand.paths.size(), 1u);
  // No splitting: single arm continues into the local detector.
  EXPECT_NEAR(cand.paths[0].splitting_db, 0.0, 1e-12);
  EXPECT_NEAR(cand.paths[0].static_loss_db,
              kParams.optical.alpha_db_per_um * 9000.0, 1e-9);
  EXPECT_NEAR(cand.electrical_wl_um, 12000.0, 1e-9);
}

TEST(Assemble, TwoSeparateComponents) {
  // Electrical trunk, both arms optical: each arm is its own component
  // with its own modulator at the Steiner point... both arms start at the
  // same top, so they form ONE component with a 2-way split.
  const os::SteinerTree tree = star_tree();
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  const auto ctx = make_ctx(tree, rooted);
  std::vector<oc::EdgeKind> kinds(4, oc::EdgeKind::Optical);
  kinds[3] = oc::EdgeKind::Electrical;  // trunk electrical
  const oc::Candidate cand = oc::assemble_candidate(ctx, kinds, 0);
  EXPECT_EQ(cand.num_modulators, 1);
  EXPECT_EQ(cand.num_detectors, 2);
  ASSERT_EQ(cand.paths.size(), 2u);
  EXPECT_NEAR(cand.paths[0].splitting_db, 10.0 * std::log10(2.0), 1e-9);
}

TEST(Assemble, PassThroughSinkAddsTapArm) {
  // Chain root -> sinkA -> sinkB, all optical: at sinkA the light both
  // taps locally and continues, so a 2-way split applies and sinkA and
  // sinkB are separate detector paths.
  os::SteinerTree tree;
  tree.points = {{0, 0}, {8000, 0}, {16000, 0}};
  tree.num_terminals = 3;
  tree.edges = {{0, 1}, {1, 2}};
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  const auto ctx = make_ctx(tree, rooted);
  const oc::Candidate cand = oc::assemble_candidate(
      ctx, std::vector<oc::EdgeKind>(3, oc::EdgeKind::Optical), 0);
  EXPECT_EQ(cand.num_modulators, 1);
  EXPECT_EQ(cand.num_detectors, 2);
  ASSERT_EQ(cand.paths.size(), 2u);
  const double alpha = kParams.optical.alpha_db_per_um;
  const double split = 10.0 * std::log10(2.0);
  // Path at sinkA: 8000 um + split; path at sinkB: 16000 um + split.
  std::vector<double> losses{cand.paths[0].static_loss_db,
                             cand.paths[1].static_loss_db};
  std::sort(losses.begin(), losses.end());
  EXPECT_NEAR(losses[0], alpha * 8000.0 + split, 1e-9);
  EXPECT_NEAR(losses[1], alpha * 16000.0 + split, 1e-9);
}

// ---------------------------------------------------------------------
// DP vs brute force.

namespace {

struct Enumerated {
  double power;
  double worst_loss;
};

/// All 2^edges labelings of a tree, assembled; returns (power, worst
/// static loss) of those that are detection-feasible in isolation.
std::vector<Enumerated> brute_force(const oc::AssembleContext& ctx) {
  const std::size_t n = ctx.tree->num_points();
  std::vector<std::size_t> edge_nodes;
  for (std::size_t v = 0; v < n; ++v) {
    if (v != ctx.rooted->root) edge_nodes.push_back(v);
  }
  std::vector<Enumerated> out;
  for (std::size_t mask = 0; mask < (1ull << edge_nodes.size()); ++mask) {
    std::vector<oc::EdgeKind> kinds(n, oc::EdgeKind::Electrical);
    for (std::size_t b = 0; b < edge_nodes.size(); ++b) {
      if (mask & (1ull << b)) kinds[edge_nodes[b]] = oc::EdgeKind::Optical;
    }
    const oc::Candidate cand = oc::assemble_candidate(ctx, kinds, 0);
    if (cand.worst_estimated_loss_db() > ctx.params->optical.max_loss_db)
      continue;
    out.push_back({cand.power_pj, cand.worst_estimated_loss_db()});
  }
  return out;
}

os::SteinerTree random_tree(operon::util::Rng& rng, std::size_t terminals,
                            double extent) {
  std::vector<og::Point> pts(terminals);
  for (auto& p : pts) p = {rng.uniform(0, extent), rng.uniform(0, extent)};
  return os::bi1s(pts, {.metric = os::Metric::Euclidean});
}

}  // namespace

TEST(DpVsBruteForce, BestPowerMatches) {
  operon::util::Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t terminals = 3 + static_cast<std::size_t>(trial % 4);
    const os::SteinerTree tree = random_tree(rng, terminals, 15000.0);
    const os::RootedTree rooted = os::RootedTree::build(tree, 0);
    const std::size_t bits = 8 + static_cast<std::size_t>(rng.uniform_int(0, 24));
    const auto ctx = make_ctx(tree, rooted, bits);

    const auto enumerated = brute_force(ctx);
    ASSERT_FALSE(enumerated.empty());
    double best_bf = 1e18;
    for (const auto& e : enumerated) best_bf = std::min(best_bf, e.power);

    oc::DpOptions options;
    options.max_labels = 64;
    const auto candidates = oc::run_codesign_dp(ctx, 0, options);
    ASSERT_FALSE(candidates.empty());
    double best_dp = 1e18;
    for (const auto& c : candidates) {
      if (c.worst_estimated_loss_db() <= ctx.params->optical.max_loss_db) {
        best_dp = std::min(best_dp, c.power_pj);
      }
    }
    EXPECT_NEAR(best_dp, best_bf, 1e-6)
        << "trial " << trial << " terminals " << terminals << " bits " << bits;
  }
}

TEST(DpVsBruteForce, CoversParetoFrontier) {
  operon::util::Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    const os::SteinerTree tree = random_tree(rng, 4, 12000.0);
    const os::RootedTree rooted = os::RootedTree::build(tree, 0);
    const auto ctx = make_ctx(tree, rooted, 16);

    // Enumerated Pareto frontier on (power, worst loss).
    auto enumerated = brute_force(ctx);
    std::vector<Enumerated> frontier;
    for (const auto& e : enumerated) {
      bool dominated = false;
      for (const auto& other : enumerated) {
        if (other.power < e.power - 1e-9 &&
            other.worst_loss <= e.worst_loss + 1e-9) {
          dominated = true;
          break;
        }
      }
      if (!dominated) frontier.push_back(e);
    }

    oc::DpOptions options;
    options.max_labels = 0;  // unlimited
    const auto candidates = oc::run_codesign_dp(ctx, 0, options);

    // Every frontier point has a DP candidate at least as good.
    for (const auto& f : frontier) {
      bool covered = false;
      for (const auto& c : candidates) {
        if (c.power_pj <= f.power + 1e-6 &&
            c.worst_estimated_loss_db() <= f.worst_loss + 1e-6) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "frontier point (power " << f.power << ", loss "
                           << f.worst_loss << ") not covered in trial "
                           << trial;
    }
  }
}

TEST(Dp, TightLossBudgetForcesElectrical) {
  // With a lm too small for even one span, the only feasible candidate
  // is all-electrical.
  om::TechParams tight = kParams;
  tight.optical.max_loss_db = 0.5;
  const os::SteinerTree tree = star_tree();
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  oc::AssembleContext ctx = make_ctx(tree, rooted);
  ctx.params = &tight;
  const auto candidates = oc::run_codesign_dp(ctx, 0);
  for (const auto& c : candidates) {
    if (c.worst_estimated_loss_db() <= tight.optical.max_loss_db) {
      EXPECT_TRUE(c.pure_electrical());
    }
  }
}

TEST(Dp, PruningKeepsBestPower) {
  // Aggressive label caps must not lose the min-power candidate on a
  // moderately sized tree (regression guard for the closed-label
  // preservation logic).
  operon::util::Rng rng(31337);
  const os::SteinerTree tree = random_tree(rng, 6, 15000.0);
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  const auto ctx = make_ctx(tree, rooted, 20);

  oc::DpOptions wide;
  wide.max_labels = 0;
  oc::DpOptions narrow;
  narrow.max_labels = 4;
  const auto wide_cands = oc::run_codesign_dp(ctx, 0, wide);
  const auto narrow_cands = oc::run_codesign_dp(ctx, 0, narrow);
  ASSERT_FALSE(narrow_cands.empty());
  // Narrow never beats wide, and stays within 10% of it.
  EXPECT_GE(narrow_cands[0].power_pj, wide_cands[0].power_pj - 1e-9);
  EXPECT_LE(narrow_cands[0].power_pj, wide_cands[0].power_pj * 1.10 + 1e-9);
}

// ---------------------------------------------------------------------
// Generation driver.

namespace {

om::Design bus_design(std::size_t groups, std::size_t bits,
                      std::uint64_t seed) {
  operon::util::Rng rng(seed);
  om::Design design;
  design.name = "gen";
  design.chip = og::BBox::of({0, 0}, {20000, 20000});
  for (std::size_t g = 0; g < groups; ++g) {
    om::SignalGroup group;
    group.name = "g" + std::to_string(g);
    const og::Point src{rng.uniform(500, 6000), rng.uniform(500, 19000)};
    const og::Point dst{rng.uniform(12000, 19500), rng.uniform(500, 19000)};
    for (std::size_t b = 0; b < bits; ++b) {
      om::SignalBit bit;
      bit.source = {{src.x + rng.uniform(0, 100), src.y + rng.uniform(0, 100)},
                    om::PinRole::Source};
      bit.sinks.push_back(
          {{dst.x + rng.uniform(0, 100), dst.y + rng.uniform(0, 100)},
           om::PinRole::Sink});
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  }
  return design;
}

}  // namespace

TEST(Generate, InvariantsOnSmallDesign) {
  const om::Design design = bus_design(6, 16, 99);
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  ASSERT_EQ(nets.num_hyper_nets(), 6u);

  const auto sets = oc::generate_candidates(design, nets.hyper_nets, kParams);
  ASSERT_EQ(sets.size(), 6u);
  for (const auto& set : sets) {
    ASSERT_GE(set.options.size(), 1u);
    EXPECT_EQ(set.electrical_index, set.options.size() - 1);
    EXPECT_TRUE(set.electrical().pure_electrical());
    EXPECT_EQ(set.bit_count, 16u);
    // Candidates are sorted by power (except the trailing a_ie).
    for (std::size_t c = 1; c + 1 < set.options.size(); ++c) {
      EXPECT_LE(set.options[c - 1].power_pj, set.options[c].power_pj + 1e-9);
    }
    // At 1.4+ cm spans, optics must beat copper: the best co-design
    // candidate is optical and cheaper than the electrical fallback.
    ASSERT_GE(set.options.size(), 2u);
    EXPECT_FALSE(set.options[0].pure_electrical());
    EXPECT_LT(set.options[0].power_pj, set.electrical().power_pj);
    // All kept candidates are detection-feasible in isolation.
    for (const auto& cand : set.options) {
      EXPECT_LE(cand.worst_estimated_loss_db(),
                kParams.optical.max_loss_db + 1e-6);
    }
  }
}

TEST(Generate, BBoxCoversOpticalGeometry) {
  const om::Design design = bus_design(3, 8, 7);
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  const auto sets = oc::generate_candidates(design, nets.hyper_nets, kParams);
  for (const auto& set : sets) {
    for (const auto& cand : set.options) {
      for (const auto& seg : cand.optical_segments) {
        EXPECT_TRUE(set.bbox.contains(seg.a));
        EXPECT_TRUE(set.bbox.contains(seg.b));
      }
    }
  }
}
