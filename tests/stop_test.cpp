// Tests for the run-budget/cancellation substrate (util/stop.hpp):
// StopToken checkpoint semantics, trip records, replay determinism of
// stop_at_checkpoint, source chaining, and the stage_deadline
// composition audit (Deadline(0) == unlimited at every combination).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/stop.hpp"

namespace ou = operon::util;

TEST(Stop, NullTokenNeverStops) {
  ou::StopToken token;
  EXPECT_FALSE(static_cast<bool>(token));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(token.checkpoint("stage"));
  EXPECT_FALSE(token.stopped());
  EXPECT_EQ(token.trip_checkpoint(), 0u);
  EXPECT_EQ(token.checkpoints(), 0u);  // null tokens count nothing
  EXPECT_EQ(token.reason(), ou::StopReason::None);
}

TEST(Stop, UnarmedSourceCountsButNeverTrips) {
  ou::StopSource source;
  ou::StopToken token = source.token();
  EXPECT_TRUE(static_cast<bool>(token));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(token.checkpoint("a"));
  EXPECT_EQ(token.checkpoints(), 10u);
  EXPECT_FALSE(token.stopped());
}

TEST(Stop, StopAtCheckpointTripsExactlyThere) {
  ou::StopSource source;
  source.arm(/*time_limit_s=*/0.0, /*stop_at_checkpoint=*/3);
  ou::StopToken token = source.token();
  EXPECT_FALSE(token.checkpoint("one"));
  EXPECT_FALSE(token.checkpoint("two"));
  EXPECT_TRUE(token.checkpoint("three"));
  EXPECT_TRUE(token.stopped());
  EXPECT_EQ(token.trip_checkpoint(), 3u);
  EXPECT_EQ(token.reason(), ou::StopReason::DebugCheckpoint);
  EXPECT_STREQ(token.trip_stage(), "three");
  // The trip is sticky and the record frozen; later checkpoints still
  // count but return true without rewriting the trip.
  EXPECT_TRUE(token.checkpoint("four"));
  EXPECT_EQ(token.trip_checkpoint(), 3u);
  EXPECT_STREQ(token.trip_stage(), "three");
  EXPECT_EQ(token.checkpoints(), 4u);
}

TEST(Stop, TinyTimeLimitTripsAtFirstCheckpoint) {
  ou::StopSource source;
  source.arm(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  ou::StopToken token = source.token();
  EXPECT_TRUE(token.checkpoint("stage"));
  EXPECT_EQ(token.reason(), ou::StopReason::TimeLimit);
  EXPECT_EQ(token.trip_checkpoint(), 1u);
}

TEST(Stop, RequestStopTripsWithInterruptAndBeatsStopAt) {
  ou::StopSource source;
  source.arm(0.0, /*stop_at_checkpoint=*/50);
  source.request_stop();  // what the SIGINT handler does
  ou::StopToken token = source.token();
  EXPECT_TRUE(token.checkpoint("stage"));
  EXPECT_EQ(token.reason(), ou::StopReason::Interrupt);
  EXPECT_EQ(token.trip_checkpoint(), 1u);
}

TEST(Stop, ChainedParentStopsChildAndSeesItsProgress) {
  ou::StopSource parent;
  ou::StopSource child;
  child.chain(parent.token());
  ou::StopToken token = child.token();

  EXPECT_FALSE(token.checkpoint("warmup"));
  // Progress is forwarded upward: a watchdog on the parent sees the
  // child's heartbeat even though the parent never checkpoints.
  EXPECT_STREQ(parent.token().last_stage(), "warmup");

  parent.request_stop();
  EXPECT_TRUE(token.checkpoint("work"));
  EXPECT_EQ(token.reason(), ou::StopReason::Interrupt);
  EXPECT_EQ(token.trip_checkpoint(), 2u);  // numbered on the child
}

TEST(Stop, ChainedParentDeadlineCapsChild) {
  ou::StopSource parent;
  parent.arm(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  ou::StopSource child;  // itself unlimited
  child.chain(parent.token());
  ou::StopToken token = child.token();
  EXPECT_TRUE(token.checkpoint("stage"));
  EXPECT_EQ(token.reason(), ou::StopReason::TimeLimit);
}

TEST(Stop, ReplayIsDeterministic) {
  // Two sources armed with the same stop_at produce identical trip
  // records over the same checkpoint sequence — the property the
  // pipeline's replay rests on.
  for (int round = 0; round < 2; ++round) {
    ou::StopSource source;
    source.arm(0.0, 5);
    ou::StopToken token = source.token();
    int trips = 0;
    for (int i = 0; i < 8; ++i) trips += token.checkpoint("s") ? 1 : 0;
    EXPECT_EQ(trips, 4);  // checkpoints 5..8
    EXPECT_EQ(token.trip_checkpoint(), 5u);
    EXPECT_EQ(token.reason(), ou::StopReason::DebugCheckpoint);
  }
}

// -- stage_deadline composition audit --------------------------------------
//
// Deadline(<=0) means "unlimited"; the audit walks every combination of
// {null token, unarmed, unlimited budget, finite budget, expired
// budget} x {no stage limit, finite stage limit}.

TEST(StopDeadline, NullTokenPassesStageLimitThrough) {
  ou::StopToken token;
  EXPECT_DOUBLE_EQ(token.stage_deadline(5.0).budget(), 5.0);
  EXPECT_DOUBLE_EQ(token.stage_deadline(0.0).budget(), 0.0);    // unlimited
  EXPECT_DOUBLE_EQ(token.stage_deadline(-1.0).budget(), 0.0);   // unlimited
  EXPECT_FALSE(token.stage_deadline(0.0).expired());
}

TEST(StopDeadline, UnarmedAndUnlimitedBudgetsLeaveStageAlone) {
  ou::StopSource unarmed;
  EXPECT_DOUBLE_EQ(unarmed.token().stage_deadline(5.0).budget(), 5.0);
  EXPECT_DOUBLE_EQ(unarmed.token().stage_deadline(0.0).budget(), 0.0);

  ou::StopSource unlimited;
  unlimited.arm(0.0);  // armed, but no wall-clock budget
  EXPECT_DOUBLE_EQ(unlimited.token().stage_deadline(5.0).budget(), 5.0);
  EXPECT_DOUBLE_EQ(unlimited.token().stage_deadline(0.0).budget(), 0.0);
}

TEST(StopDeadline, FiniteRunBudgetCapsStageLimit) {
  ou::StopSource source;
  source.arm(100.0);
  // Stage tighter than the run: stage wins.
  EXPECT_DOUBLE_EQ(source.token().stage_deadline(5.0).budget(), 5.0);
  // No stage limit: the remaining run budget becomes the deadline.
  const double remaining = source.token().stage_deadline(0.0).budget();
  EXPECT_GT(remaining, 90.0);
  EXPECT_LE(remaining, 100.0);
  // Stage looser than the run: the run budget wins.
  const double capped = source.token().stage_deadline(500.0).budget();
  EXPECT_LE(capped, 100.0);
  EXPECT_GT(capped, 90.0);
}

TEST(StopDeadline, ExpiredRunBudgetYieldsTinyPositiveDeadline) {
  ou::StopSource source;
  source.arm(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  // Deadline(0) would mean unlimited — the opposite of expired — so an
  // exhausted budget must clamp to the tightest positive deadline.
  const ou::Deadline deadline = source.token().stage_deadline(0.0);
  EXPECT_GT(deadline.budget(), 0.0);
  EXPECT_TRUE(deadline.expired());
  EXPECT_TRUE(source.token().stage_deadline(500.0).expired());
}

TEST(Stop, ReasonNames) {
  EXPECT_EQ(ou::to_string(ou::StopReason::None), "none");
  EXPECT_EQ(ou::to_string(ou::StopReason::TimeLimit), "time-limit");
  EXPECT_EQ(ou::to_string(ou::StopReason::Interrupt), "interrupt");
  EXPECT_EQ(ou::to_string(ou::StopReason::DebugCheckpoint),
            "debug-checkpoint");
}

TEST(Stop, SecondsSinceCheckpointTracksProgress) {
  ou::StopSource source;
  EXPECT_DOUBLE_EQ(source.token().seconds_since_checkpoint(), 0.0);  // unarmed
  source.arm(0.0);
  ou::StopToken token = source.token();
  token.checkpoint("stage");
  EXPECT_GE(token.seconds_since_checkpoint(), 0.0);
  EXPECT_LT(token.seconds_since_checkpoint(), 10.0);
  EXPECT_STREQ(token.last_stage(), "stage");
}
