// Tests for the Lagrangian-relaxation solver (Algorithm 1): feasibility
// of the final selection, closeness to the exact optimum (Table 1 shows
// LR within a few percent of ILP), iteration cap, trace bookkeeping, and
// behaviour under tight loss budgets.

#include <gtest/gtest.h>

#include <functional>

#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "lr/lr.hpp"
#include "util/rng.hpp"

namespace oc = operon::codesign;
namespace om = operon::model;
namespace og = operon::geom;

namespace {

const om::TechParams kParams = om::TechParams::dac18_defaults();

om::Design mesh_design(std::size_t per_direction, std::uint64_t seed) {
  operon::util::Rng rng(seed);
  om::Design design;
  design.name = "lrmesh";
  design.chip = og::BBox::of({0, 0}, {20000, 20000});
  const auto add_group = [&](const og::Point& src, const og::Point& dst) {
    om::SignalGroup group;
    group.name = "g" + std::to_string(design.groups.size());
    for (int b = 0; b < 10; ++b) {
      om::SignalBit bit;
      bit.source = {{src.x + rng.uniform(0, 60), src.y + rng.uniform(0, 60)},
                    om::PinRole::Source};
      bit.sinks.push_back(
          {{dst.x + rng.uniform(0, 60), dst.y + rng.uniform(0, 60)},
           om::PinRole::Sink});
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  };
  for (std::size_t k = 0; k < per_direction; ++k) {
    const double c = 3000.0 + 2200.0 * static_cast<double>(k);
    add_group({1000, c}, {19000, c});
    add_group({c, 1000}, {c, 19000});
  }
  return design;
}

std::vector<oc::CandidateSet> candidates_for(const om::Design& design,
                                             const om::TechParams& params) {
  operon::cluster::SignalProcessingOptions processing;
  const auto nets = operon::cluster::build_hyper_nets(design, processing);
  return oc::generate_candidates(design, nets.hyper_nets, params);
}

}  // namespace

TEST(Lr, FinalSelectionFeasible) {
  const auto sets = candidates_for(mesh_design(3, 21), kParams);
  const auto result = operon::lr::solve_selection_lr(sets, kParams);
  ASSERT_EQ(result.selection.size(), sets.size());
  EXPECT_TRUE(result.violations.clean());
  EXPECT_GE(result.iterations, 1u);
  EXPECT_LE(result.iterations, 10u);
  EXPECT_EQ(result.trace.size(), result.iterations);
}

TEST(Lr, CloseToExactOptimum) {
  const auto sets = candidates_for(mesh_design(3, 22), kParams);
  const auto exact = oc::solve_selection_exact(sets, kParams);
  ASSERT_TRUE(exact.proven_optimal);
  const auto lr = operon::lr::solve_selection_lr(sets, kParams);
  EXPECT_TRUE(lr.violations.clean());
  EXPECT_GE(lr.power_pj, exact.power_pj - 1e-9);  // never better than exact
  // Paper: LR within ~3-4% of ILP. Allow 12% slack on random meshes.
  EXPECT_LE(lr.power_pj, exact.power_pj * 1.12 + 1e-9);
}

TEST(Lr, BeatsAllElectricalClearly) {
  const auto sets = candidates_for(mesh_design(3, 23), kParams);
  oc::SelectionEvaluator evaluator(sets, kParams);
  const auto lr = operon::lr::solve_selection_lr(sets, kParams);
  const double electrical =
      evaluator.total_power(evaluator.all_electrical());
  // The whole point of the paper: hybrid beats all-electrical by ~3x.
  EXPECT_LT(lr.power_pj, electrical * 0.6);
}

TEST(Lr, IterationCapRespected) {
  const auto sets = candidates_for(mesh_design(2, 24), kParams);
  operon::lr::LrOptions options;
  options.max_iterations = 3;
  const auto result = operon::lr::solve_selection_lr(sets, kParams, options);
  EXPECT_LE(result.iterations, 3u);
  EXPECT_TRUE(result.violations.clean());
}

TEST(Lr, RepairDisabledMayLeaveViolations) {
  // Under an artificially tight budget and no repair, LR may end with
  // violations (we only check it doesn't crash and reports them).
  om::TechParams tight = kParams;
  tight.optical.max_loss_db = 2.4;
  const auto sets = candidates_for(mesh_design(4, 25), tight);
  operon::lr::LrOptions options;
  options.repair_violations = false;
  const auto result = operon::lr::solve_selection_lr(sets, tight, options);
  ASSERT_EQ(result.selection.size(), sets.size());
  // With repair on, the same instance is clean.
  options.repair_violations = true;
  const auto repaired = operon::lr::solve_selection_lr(sets, tight, options);
  EXPECT_TRUE(repaired.violations.clean());
}

TEST(Lr, TraceMonotoneBookkeeping) {
  const auto sets = candidates_for(mesh_design(3, 26), kParams);
  const auto result = operon::lr::solve_selection_lr(sets, kParams);
  for (const auto& step : result.trace) {
    EXPECT_GE(step.power_pj, 0.0);
    EXPECT_GE(step.max_multiplier, 0.0);
  }
}

TEST(Lr, MultiplierPressureDrivesFeasibility) {
  // Tight-ish budget: min-power selection is infeasible, LR must move
  // off it before (or without) repair.
  om::TechParams tight = kParams;
  tight.optical.max_loss_db = 3.2;
  const auto sets = candidates_for(mesh_design(4, 27), tight);
  oc::SelectionEvaluator evaluator(sets, tight);
  const auto min_power = evaluator.min_power_selection();
  if (evaluator.violations(min_power).clean()) {
    GTEST_SKIP() << "instance not tight enough to exercise multipliers";
  }
  operon::lr::LrOptions options;
  options.repair_violations = false;
  options.max_iterations = 10;
  const auto result = operon::lr::solve_selection_lr(sets, tight, options);
  const auto lr_viol = result.violations;
  const auto min_viol = evaluator.violations(min_power);
  EXPECT_LE(lr_viol.total_excess_db, min_viol.total_excess_db + 1e-9);
}
