// Serve observability surface: the per-job semantic event streams are
// bit-identical regardless of submission order and executor count (the
// event analogue of the ledger record-set invariant), the per-job
// metrics payload is semantically identical at any per-job thread
// count, the events op honors tail and strict parsing and pre-truncates
// oversized payloads instead of breaking the framing, the stats op
// serves Prometheus text, and --trace-dir yields one Chrome trace per
// computed job.
//
// Determinism caveat baked into these tests: duplicate job keys
// deduplicate through ResultCache::acquire, which makes the
// compute-vs-cache-hit split scheduling-dependent — so the invariance
// batches use UNIQUE keys only.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace os = operon::serve;
namespace ob = operon::obs;
namespace ou = operon::util;

namespace {

os::JobSpec job(std::uint64_t seed, std::size_t groups,
                const std::string& tenant) {
  os::JobSpec spec;
  spec.groups = groups;
  spec.bits_lo = 2;
  spec.bits_hi = 4;
  spec.seed = seed;
  spec.tenant = tenant;
  spec.ilp_limit_s = 5.0;
  return spec;
}

std::vector<os::JobSpec> unique_batch() {
  return {job(1, 4, "alpha"), job(2, 4, "alpha"), job(3, 5, "beta"),
          job(4, 3, "beta")};
}

/// Submit every spec in order, wait for all, shut down; return the
/// retained events.
std::vector<ob::Event> run_batch(const std::vector<os::JobSpec>& jobs,
                                 std::size_t workers,
                                 std::size_t job_threads) {
  os::ServerConfig config;
  config.workers = workers;
  config.job_threads = job_threads;
  os::Server server(config);
  std::vector<std::uint64_t> ids;
  for (const os::JobSpec& spec : jobs) {
    os::Request request;
    request.op = os::Op::Submit;
    request.spec = spec;
    const os::Response response = server.handle(request);
    EXPECT_TRUE(response.ok) << response.error << ": " << response.detail;
    ids.push_back(response.job);
  }
  for (const std::uint64_t id : ids) {
    os::Request request;
    request.op = os::Op::Result;
    request.job = id;
    request.wait = true;
    const os::Response response = server.handle(request);
    EXPECT_TRUE(response.ok) << response.error << ": " << response.detail;
  }
  server.shutdown(/*cancel_running=*/false);
  return server.events_log().events();
}

/// Per-source semantic streams: source -> semantic lines in seq order.
std::map<std::string, std::vector<std::string>> streams(
    const std::vector<ob::Event>& events) {
  std::map<std::string, std::vector<std::string>> out;
  for (const ob::Event& event : events) {
    if (event.context.source.empty()) continue;  // daemon process stream
    out[event.context.source].push_back(ob::semantic_line(event));
  }
  // Events interleave across jobs in the shared log; each job's stream
  // is reassembled in its own seq order.
  for (auto& [source, lines] : out) {
    std::sort(lines.begin(), lines.end(), [](const std::string& a,
                                             const std::string& b) {
      // semantic_line leads with "source=<s> seq=<n> " — sorting the
      // whole line would order seq 10 before 2, so extract the number.
      const auto seq = [](const std::string& line) {
        const std::size_t at = line.find(" seq=") + 5;
        return std::stoull(line.substr(at));
      };
      return seq(a) < seq(b);
    });
  }
  return out;
}

TEST(ServeEvents, SemanticStreamsInvariantAcrossOrderAndWorkers) {
  const auto baseline = streams(run_batch(unique_batch(), /*workers=*/1,
                                          /*job_threads=*/1));
  ASSERT_EQ(baseline.size(), 4u);  // one stream per unique job key
  for (const auto& [source, lines] : baseline) {
    // submitted, started, core.run.start, ..., core.run.completed,
    // serve.job.completed — at least the five lifecycle marks.
    ASSERT_GE(lines.size(), 5u) << source;
    EXPECT_NE(lines.front().find("name=serve.job.submitted"),
              std::string::npos);
    EXPECT_NE(lines.back().find("name=serve.job.completed"),
              std::string::npos);
  }

  std::vector<os::JobSpec> reversed = unique_batch();
  std::reverse(reversed.begin(), reversed.end());
  const auto shuffled = streams(run_batch(reversed, /*workers=*/4,
                                          /*job_threads=*/0));
  EXPECT_EQ(shuffled, baseline);
}

/// One computed job; returns the with_metrics status response.
os::Response metrics_response(std::size_t job_threads) {
  os::ServerConfig config;
  config.job_threads = job_threads;
  os::Server server(config);
  os::Request submit;
  submit.op = os::Op::Submit;
  submit.spec = job(21, 4, "alpha");
  submit.wait = true;
  const os::Response submitted = server.handle(submit);
  EXPECT_TRUE(submitted.ok) << submitted.error;

  os::Request status;
  status.op = os::Op::Status;
  status.job = submitted.job;
  status.with_metrics = true;
  const os::Response response = server.handle(status);
  EXPECT_TRUE(response.ok) << response.error;
  server.shutdown(false);
  return response;
}

ob::MetricsSnapshot parse_points(const std::string& json) {
  ob::MetricsSnapshot snapshot;
  const ou::JsonValue doc = ou::parse_json(json);
  for (const ou::JsonValue& item : doc.items()) {
    snapshot.points.push_back(ob::metric_point_from_json(item));
  }
  return snapshot;
}

TEST(ServeEvents, PerJobMetricsPayloadSemanticAcrossJobThreads) {
  const os::Response serial = metrics_response(/*job_threads=*/1);
  ASSERT_FALSE(serial.job_metrics_json.empty());
  ASSERT_FALSE(serial.spans_json.empty());
  const ob::MetricsSnapshot a = parse_points(serial.job_metrics_json);
  EXPECT_FALSE(a.points.empty());

  const os::Response parallel = metrics_response(/*job_threads=*/0);
  const ob::MetricsSnapshot b = parse_points(parallel.job_metrics_json);
  EXPECT_TRUE(ob::semantic_equal(a, b));

  // The span summary names real stages.
  EXPECT_NE(serial.spans_json.find("\"name\""), std::string::npos);
}

TEST(ServeEvents, CachedJobsServeEmptyMetricsPayload) {
  os::ServerConfig config;
  os::Server server(config);
  os::Request submit;
  submit.op = os::Op::Submit;
  submit.spec = job(31, 3, "alpha");
  submit.wait = true;
  const os::Response first = server.handle(submit);
  ASSERT_TRUE(first.ok) << first.error;
  const os::Response second = server.handle(submit);  // cache hit
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cached);

  os::Request status;
  status.op = os::Op::Status;
  status.job = second.job;
  status.with_metrics = true;
  const os::Response response = server.handle(status);
  ASSERT_TRUE(response.ok) << response.error;
  // A cached answer ran nothing: nothing to report.
  EXPECT_TRUE(response.job_metrics_json.empty());
  EXPECT_TRUE(response.spans_json.empty());
  server.shutdown(false);
}

TEST(ServeEvents, EventsOpHonorsTailAndParsesStrictly) {
  os::ServerConfig config;
  os::Server server(config);
  for (int i = 0; i < 6; ++i) {
    server.events_log().emit(operon::util::LogLevel::Info,
                             "test.e" + std::to_string(i), "", {});
  }
  os::Request request;
  request.op = os::Op::Events;
  request.tail = 2;
  const os::Response response = server.handle(request);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_FALSE(response.truncated);
  const ou::JsonValue doc = ou::parse_json(response.events_json);
  ASSERT_EQ(doc.items().size(), 2u);
  EXPECT_EQ(ob::event_from_json(doc.items().back()).name, "test.e5");

  // tail on any other op is an unknown member (strict whitelist).
  const os::Response rejected =
      os::parse_response(server.handle_line(R"({"op":"stats","tail":5})"));
  EXPECT_FALSE(rejected.ok);
  server.shutdown(false);
}

TEST(ServeEvents, OversizedEventsPayloadTruncatesInsteadOfBreakingFraming) {
  os::ServerConfig config;
  os::Server server(config);
  const std::string filler(1024, 'x');
  for (int i = 0; i < 200; ++i) {
    server.events_log().emit(operon::util::LogLevel::Info, "test.big", filler,
                             {});
  }
  const std::string line = server.handle_line(R"({"op":"events"})");
  EXPECT_LE(line.size(), os::kMaxFrameBytes);
  const os::Response response = os::parse_response(line);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_TRUE(response.truncated);
  // What survives is the newest slice, still schema-valid.
  const ou::JsonValue doc = ou::parse_json(response.events_json);
  ASSERT_FALSE(doc.items().empty());
  EXPECT_EQ(ob::event_from_json(doc.items().back()).name, "test.big");
  server.shutdown(false);
}

TEST(ServeEvents, StatsServesPrometheusTextOnRequest) {
  os::ServerConfig config;
  os::Server server(config);
  os::Request submit;
  submit.op = os::Op::Submit;
  submit.spec = job(41, 3, "alpha");
  submit.wait = true;
  ASSERT_TRUE(server.handle(submit).ok);

  os::Request stats;
  stats.op = os::Op::Stats;
  const os::Response plain = server.handle(stats);
  ASSERT_TRUE(plain.ok);
  EXPECT_TRUE(plain.prom.empty());  // opt-in only

  stats.prom = true;
  const os::Response with_prom = server.handle(stats);
  ASSERT_TRUE(with_prom.ok);
  EXPECT_NE(with_prom.prom.find("# TYPE operon_serve_submitted counter"),
            std::string::npos)
      << with_prom.prom;
  // The text round-trips the protocol's JSON escaping.
  const os::Response reparsed =
      os::parse_response(os::to_json_line(with_prom));
  EXPECT_EQ(reparsed.prom, with_prom.prom);
  server.shutdown(false);
}

TEST(ServeEvents, TraceDirWritesOneTaggedTracePerComputedJob) {
  const std::string dir = testing::TempDir() + "serve_events_traces";
  std::remove((dir + "/job-1.json").c_str());
  std::filesystem::create_directories(dir);
  os::ServerConfig config;
  config.trace_dir = dir;
  os::Server server(config);
  os::Request submit;
  submit.op = os::Op::Submit;
  submit.spec = job(51, 3, "tracer");
  submit.wait = true;
  const os::Response response = server.handle(submit);
  ASSERT_TRUE(response.ok) << response.error;
  server.shutdown(false);

  std::ifstream in(dir + "/job-" + std::to_string(response.job) + ".json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"metadata\""), std::string::npos);
  EXPECT_NE(trace.find("\"tenant\":\"tracer\""), std::string::npos);
  EXPECT_NE(trace.find("\"key\":\"" + response.key + "\""), std::string::npos);
}

}  // namespace
