// Fault-injection harness tests: every enumerable corruption of a valid
// design must either be rejected with structured Error diagnostics (a
// util::CheckError at the library boundary) or flow through the full
// pipeline and produce a plan that the independent verifier accepts —
// never crash, never hang, never return an unverifiable plan. Also
// covers the degradation ladder (ILP time limit -> LR warm start, LR
// non-convergence -> repaired selection, infeasible budgets -> a_ie)
// and its bit-identical behavior across thread counts.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "benchgen/corrupt.hpp"
#include "core/flow.hpp"
#include "core/verify.hpp"
#include "model/design_json.hpp"
#include "model/diagnostic.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ob = operon::benchgen;
namespace oc = operon::core;
namespace om = operon::model;
namespace ou = operon::util;

namespace {

om::Design small_design(std::uint64_t seed) {
  ob::BenchmarkSpec spec;
  spec.name = "fi" + std::to_string(seed);
  spec.num_groups = 3 + seed % 3;
  spec.bits_lo = 1;
  spec.bits_hi = 2;
  spec.seed = 4000 + seed;
  return ob::generate_benchmark(spec);
}

oc::OperonOptions fast_options() {
  oc::OperonOptions options;
  options.solver = oc::SolverKind::Lr;
  return options;
}

}  // namespace

TEST(FaultInjection, EveryKindRejectsOrVerifies) {
  const std::vector<ob::FaultKind> kinds = ob::all_fault_kinds();
  const oc::OperonOptions options = fast_options();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (const ob::FaultKind kind : kinds) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " fault=" +
                   std::string(ob::fault_name(kind)));
      ou::Rng rng(0xfa171ULL * (seed + 1));
      const om::Design bad =
          ob::corrupt_design(small_design(seed), kind, rng);
      try {
        const oc::OperonResult result = oc::run_operon(bad, options);
        // Completed: must be the Complete expectation and must verify.
        EXPECT_EQ(ob::fault_expectation(kind),
                  ob::FaultExpectation::Complete);
        const auto problems = oc::verify_result(result, options);
        EXPECT_TRUE(problems.empty())
            << (problems.empty() ? "" : problems.front().message);
        EXPECT_TRUE(result.violations.clean());
      } catch (const ou::CheckError& e) {
        // Rejected: must be the Reject expectation, and the message must
        // carry the structured enumeration, not a bare check.
        EXPECT_EQ(ob::fault_expectation(kind), ob::FaultExpectation::Reject)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("[error]"), std::string::npos)
            << e.what();
      }
    }
  }
}

TEST(FaultInjection, RejectKindsCarryErrorDiagnostics) {
  for (const ob::FaultKind kind : ob::all_fault_kinds()) {
    if (ob::fault_expectation(kind) != ob::FaultExpectation::Reject) continue;
    SCOPED_TRACE(std::string(ob::fault_name(kind)));
    ou::Rng rng(7);
    const om::Design bad = ob::corrupt_design(small_design(1), kind, rng);
    const std::vector<om::Diagnostic> diagnostics = om::validate(bad);
    EXPECT_TRUE(om::has_errors(diagnostics));
    for (const om::Diagnostic& d : diagnostics) {
      EXPECT_FALSE(om::to_string(d.code).empty());
      EXPECT_FALSE(d.message.empty());
    }
  }
}

TEST(FaultInjection, CompleteKindsKeepWarningDiagnostics) {
  // duplicate-pin is degenerate-but-processable: validation warns, the
  // pipeline runs, and the warning surfaces in OperonResult::diagnostics.
  ou::Rng rng(11);
  const om::Design bad =
      ob::corrupt_design(small_design(2), ob::FaultKind::DuplicatePin, rng);
  const std::vector<om::Diagnostic> diagnostics = om::validate(bad);
  EXPECT_FALSE(om::has_errors(diagnostics));
  bool found = false;
  for (const om::Diagnostic& d : diagnostics) {
    found = found || d.code == om::DiagCode::DuplicatePin;
  }
  EXPECT_TRUE(found);

  const oc::OperonOptions options = fast_options();
  const oc::OperonResult result = oc::run_operon(bad, options);
  bool surfaced = false;
  for (const om::Diagnostic& d : result.diagnostics) {
    surfaced = surfaced || d.code == om::DiagCode::DuplicatePin;
  }
  EXPECT_TRUE(surfaced);
  EXPECT_TRUE(oc::verify_result(result, options).empty());
}

TEST(FaultInjection, CorruptTextParserNeverCrashes) {
  std::ostringstream os;
  om::write_design(os, small_design(3));
  const std::string text = os.str();
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    ou::Rng rng(seed);
    const std::string bad = ob::corrupt_text(text, rng);
    try {
      std::istringstream is(bad);
      const om::Design parsed = om::read_design(is);
      om::validate(parsed);  // must not throw — structured by contract
    } catch (const ou::CheckError&) {
      // sanctioned rejection
    }
    // Any other exception type escapes and fails the test.
  }
}

TEST(FaultInjection, CorruptJsonParserNeverCrashes) {
  const std::string text = om::design_to_json(small_design(4));
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    ou::Rng rng(seed);
    const std::string bad = ob::corrupt_json(text, rng);
    try {
      const om::Design parsed = om::design_from_json(bad);
      om::validate(parsed);
    } catch (const ou::CheckError&) {
      // sanctioned rejection
    }
  }
}

TEST(FaultInjection, CorruptorIsDeterministicPerSeed) {
  const om::Design base = small_design(5);
  for (const ob::FaultKind kind : ob::all_fault_kinds()) {
    ou::Rng a(99), b(99);
    const om::Design x = ob::corrupt_design(base, kind, a);
    const om::Design y = ob::corrupt_design(base, kind, b);
    std::ostringstream xs, ys;
    om::write_design(xs, x);
    om::write_design(ys, y);
    EXPECT_EQ(xs.str(), ys.str()) << ob::fault_name(kind);
  }
}

// -- degradation ladder ---------------------------------------------------

TEST(Degradation, LrNonConvergenceReportedAndFeasible) {
  const om::Design design = small_design(6);
  oc::OperonOptions options = fast_options();
  options.lr.max_iterations = 1;
  options.lr.convergence_ratio = 0.0;  // the criteria can never fire
  const oc::OperonResult result = oc::run_operon(design, options);
  EXPECT_TRUE(result.degraded);
  bool found = false;
  for (const om::Diagnostic& d : result.diagnostics) {
    found = found || d.code == om::DiagCode::LrNoConvergence;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(result.violations.clean());
  EXPECT_TRUE(oc::verify_result(result, options).empty());
}

TEST(Degradation, IlpTimeLimitFallsBackToWarmStart) {
  const om::Design design = small_design(7);
  oc::OperonOptions lr_only = fast_options();
  const oc::OperonResult surrogate = oc::run_operon(design, lr_only);

  oc::OperonOptions exact = fast_options();
  exact.solver = oc::SolverKind::IlpExact;
  exact.select.time_limit_s = 1e-9;  // everything times out immediately
  const oc::OperonResult result = oc::run_operon(design, exact);
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_TRUE(result.degraded);
  bool found = false;
  for (const om::Diagnostic& d : result.diagnostics) {
    found = found || d.code == om::DiagCode::SolverTimeLimit;
  }
  EXPECT_TRUE(found);
  // The LR warm start seeds the incumbent, so the degraded answer is
  // never worse than the surrogate alone.
  EXPECT_LE(result.stats.power_pj, surrogate.stats.power_pj + 1e-9);
  EXPECT_TRUE(result.violations.clean());
  EXPECT_TRUE(oc::verify_result(result, exact).empty());
}

TEST(Degradation, InfeasibleLossBudgetReportedPerNet) {
  const om::Design design = small_design(8);
  oc::OperonOptions options = fast_options();
  // Millidecibel budget: every optical labeling's static loss exceeds it,
  // so generation leaves only a_ie and the run must say so instead of
  // throwing.
  options.params.optical.max_loss_db = 1e-3;
  const oc::OperonResult result = oc::run_operon(design, options);
  EXPECT_EQ(result.stats.optical_nets, 0u);
  EXPECT_EQ(result.stats.electrical_nets, result.sets.size());
  bool found = false;
  for (const om::Diagnostic& d : result.diagnostics) {
    found = found || d.code == om::DiagCode::NetLossBudgetInfeasible;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(result.violations.clean());
  EXPECT_TRUE(oc::verify_result(result, options).empty());
}

TEST(Degradation, BitIdenticalAcrossThreadCounts) {
  const om::Design design = small_design(9);
  oc::OperonOptions base = fast_options();
  base.lr.max_iterations = 1;          // force the non-convergence rung
  base.lr.convergence_ratio = 0.0;
  std::vector<oc::OperonResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    oc::OperonOptions options = base;
    options.threads = threads;
    results.push_back(oc::run_operon(design, options));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].selection, results[i].selection);
    EXPECT_EQ(results[0].stats.power_pj, results[i].stats.power_pj);  // bit-identical
    EXPECT_EQ(results[0].degraded, results[i].degraded);
    ASSERT_EQ(results[0].diagnostics.size(), results[i].diagnostics.size());
    for (std::size_t d = 0; d < results[0].diagnostics.size(); ++d) {
      EXPECT_EQ(results[0].diagnostics[d].code,
                results[i].diagnostics[d].code);
      EXPECT_EQ(results[0].diagnostics[d].message,
                results[i].diagnostics[d].message);
    }
  }
}

TEST(Verify, FlagsTamperedResults) {
  const om::Design design = small_design(10);
  const oc::OperonOptions options = fast_options();
  oc::OperonResult result = oc::run_operon(design, options);
  ASSERT_TRUE(oc::verify_result(result, options).empty());

  oc::OperonResult wrong_power = result;
  wrong_power.stats.power_pj += 1.0;
  auto problems = oc::verify_result(wrong_power, options);
  ASSERT_FALSE(problems.empty());
  EXPECT_EQ(problems.front().code, om::DiagCode::PowerMismatch);

  oc::OperonResult wrong_counts = result;
  wrong_counts.stats.optical_nets += 1;
  problems = oc::verify_result(wrong_counts, options);
  ASSERT_FALSE(problems.empty());
  EXPECT_EQ(problems.front().code, om::DiagCode::NetCounterMismatch);

  oc::OperonResult wrong_selection = result;
  if (!wrong_selection.selection.empty()) {
    wrong_selection.selection.pop_back();
    problems = oc::verify_result(wrong_selection, options);
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(problems.front().code, om::DiagCode::SelectionSizeMismatch);
  }
}
