// Tests for the interconnect timing models: Elmore quadratic growth,
// repeatered linearization, the optical time-of-flight, the
// electrical/optical delay crossover, and candidate-level analysis on
// hand-built trees.

#include <gtest/gtest.h>

#include <cmath>

#include "codesign/assemble.hpp"
#include "steiner/tree.hpp"
#include "timing/timing.hpp"

namespace ot = operon::timing;
namespace oc = operon::codesign;
namespace os = operon::steiner;

namespace {
const ot::TimingParams kTiming = ot::TimingParams::defaults();
const operon::model::TechParams kTech =
    operon::model::TechParams::dac18_defaults();
}  // namespace

TEST(Timing, ElmoreQuadratic) {
  const double d1 = ot::elmore_delay_ps(kTiming.electrical, 1000.0);
  const double d2 = ot::elmore_delay_ps(kTiming.electrical, 2000.0);
  EXPECT_GT(d1, 0.0);
  // Doubling length more than doubles unrepeated delay (quadratic term).
  EXPECT_GT(d2, 2.0 * d1);
  EXPECT_DOUBLE_EQ(ot::elmore_delay_ps(kTiming.electrical, 0.0), 0.0);
}

TEST(Timing, RepeateredIsLinearish) {
  const double d4 = ot::repeatered_delay_ps(kTiming.electrical, 4000.0);
  const double d8 = ot::repeatered_delay_ps(kTiming.electrical, 8000.0);
  // Repeatered delay within 35% of proportional scaling (stage rounding).
  EXPECT_NEAR(d8 / d4, 2.0, 0.7);
}

TEST(Timing, RepeatersOnlyHelpLongWires) {
  // Very short wires: Elmore wins; very long wires: repeaters win.
  EXPECT_LT(ot::elmore_delay_ps(kTiming.electrical, 50.0),
            ot::repeatered_delay_ps(kTiming.electrical, 50.0));
  EXPECT_GT(ot::elmore_delay_ps(kTiming.electrical, 20000.0),
            ot::repeatered_delay_ps(kTiming.electrical, 20000.0));
  // electrical_delay_ps picks the min of both.
  for (double len : {50.0, 1000.0, 20000.0}) {
    EXPECT_DOUBLE_EQ(ot::electrical_delay_ps(kTiming.electrical, len),
                     std::min(ot::elmore_delay_ps(kTiming.electrical, len),
                              ot::repeatered_delay_ps(kTiming.electrical, len)));
  }
}

TEST(Timing, WaveguideTimeOfFlight) {
  // 1 mm at n_g = 4.2: 1000 * 4.2 / 299.79 ≈ 14.0 ps.
  EXPECT_NEAR(ot::waveguide_tof_ps(kTiming.optical, 1000.0), 14.0, 0.1);
  const double link = ot::optical_link_delay_ps(kTiming.optical, 1000.0);
  EXPECT_NEAR(link,
              kTiming.optical.modulator_latency_ps +
                  kTiming.optical.detector_latency_ps + 14.0,
              0.1);
}

TEST(Timing, CrossoverExistsAndSeparates) {
  const double crossover = ot::delay_crossover_um(kTiming);
  ASSERT_TRUE(std::isfinite(crossover));
  EXPECT_GT(crossover, 100.0);
  EXPECT_LT(crossover, 1e6);
  // Below: wire faster. Above: optics faster.
  EXPECT_LT(ot::electrical_delay_ps(kTiming.electrical, crossover * 0.5),
            ot::optical_link_delay_ps(kTiming.optical, crossover * 0.5));
  EXPECT_GT(ot::electrical_delay_ps(kTiming.electrical, crossover * 2.0),
            ot::optical_link_delay_ps(kTiming.optical, crossover * 2.0));
}

namespace {

/// Two-terminal candidate set at the given span with one candidate per
/// kind (all-optical and all-electrical).
oc::CandidateSet p2p_set(double span_um) {
  oc::CandidateSet set;
  set.bit_count = 8;
  set.root = 0;
  os::SteinerTree tree;
  tree.points = {{0, 0}, {span_um, 0}};
  tree.num_terminals = 2;
  tree.edges = {{0, 1}};
  set.baselines.push_back(tree);

  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  oc::AssembleContext ctx;
  ctx.tree = &set.baselines[0];
  ctx.rooted = &rooted;
  ctx.bit_count = 8;
  ctx.params = &kTech;
  set.options.push_back(oc::assemble_candidate(
      ctx, {oc::EdgeKind::Electrical, oc::EdgeKind::Optical}, 0));
  set.options.push_back(oc::assemble_candidate(
      ctx, {oc::EdgeKind::Electrical, oc::EdgeKind::Electrical}, 0));
  set.electrical_index = 1;
  return set;
}

}  // namespace

TEST(Timing, CandidateAnalysisP2P) {
  const oc::CandidateSet set = p2p_set(10000.0);
  const auto optical = ot::analyze_candidate(set, set.options[0], kTiming);
  const auto electrical = ot::analyze_candidate(set, set.options[1], kTiming);
  EXPECT_EQ(optical.sinks, 1u);
  EXPECT_EQ(electrical.sinks, 1u);
  EXPECT_NEAR(optical.worst_sink_delay_ps,
              ot::optical_link_delay_ps(kTiming.optical, 10000.0), 1e-9);
  EXPECT_NEAR(electrical.worst_sink_delay_ps,
              ot::electrical_delay_ps(kTiming.electrical, 10000.0), 1e-9);
  // At 1 cm, optics wins delay too.
  EXPECT_LT(optical.worst_sink_delay_ps, electrical.worst_sink_delay_ps);
}

TEST(Timing, HybridChainAccountsConversions) {
  // root --optical--> steiner --electrical--> sink: one EO, one OE at the
  // conversion point, then wire delay.
  oc::CandidateSet set;
  set.bit_count = 4;
  set.root = 0;
  os::SteinerTree tree;
  tree.points = {{0, 0}, {9000, 0}, {6000, 0}};
  tree.num_terminals = 2;
  tree.edges = {{0, 2}, {2, 1}};
  set.baselines.push_back(tree);
  const os::RootedTree rooted = os::RootedTree::build(tree, 0);
  oc::AssembleContext ctx;
  ctx.tree = &set.baselines[0];
  ctx.rooted = &rooted;
  ctx.bit_count = 4;
  ctx.params = &kTech;
  // kinds indexed by node: node1 (sink, edge from steiner) = E,
  // node2 (steiner, edge from root) = O.
  std::vector<oc::EdgeKind> kinds(3, oc::EdgeKind::Electrical);
  kinds[2] = oc::EdgeKind::Optical;
  set.options.push_back(oc::assemble_candidate(ctx, kinds, 0));
  set.electrical_index = 0;

  const auto timing = ot::analyze_candidate(set, set.options[0], kTiming);
  const double expected = kTiming.optical.modulator_latency_ps +
                          ot::waveguide_tof_ps(kTiming.optical, 6000.0) +
                          kTiming.optical.detector_latency_ps +
                          ot::electrical_delay_ps(kTiming.electrical, 3000.0);
  EXPECT_NEAR(timing.worst_sink_delay_ps, expected, 1e-9);
}

TEST(Timing, SelectionReport) {
  std::vector<oc::CandidateSet> sets{p2p_set(5000.0), p2p_set(15000.0)};
  const oc::Selection selection{0, 0};  // both optical
  const auto report = ot::analyze_selection(sets, selection, kTiming);
  EXPECT_EQ(report.worst_net, 1u);  // the longer net dominates
  EXPECT_GT(report.worst_delay_ps, report.mean_worst_delay_ps);
  EXPECT_NEAR(report.worst_delay_ps,
              ot::optical_link_delay_ps(kTiming.optical, 15000.0), 1e-9);
}
