// Tests for the min-cost max-flow substrate: textbook instances,
// negative-cost handling, integrality, flow conservation properties, and
// an assignment-problem cross-check against brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "flow/mcmf.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stop.hpp"

namespace of = operon::flow;

TEST(Mcmf, SingleEdge) {
  of::MinCostMaxFlow graph(2);
  graph.add_edge(0, 1, 5, 2.0);
  const auto result = graph.solve(0, 1);
  EXPECT_EQ(result.max_flow, 5);
  EXPECT_DOUBLE_EQ(result.total_cost, 10.0);
  EXPECT_EQ(graph.edge(0).flow, 5);
}

TEST(Mcmf, PrefersCheaperParallelPath) {
  // Two parallel 0->1 paths: cost 1 (cap 3) and cost 5 (cap 3); demand 4.
  of::MinCostMaxFlow graph(4);
  graph.add_edge(0, 1, 3, 0.0);
  graph.add_edge(1, 3, 3, 1.0);
  graph.add_edge(0, 2, 3, 0.0);
  graph.add_edge(2, 3, 3, 5.0);
  const auto result = graph.solve(0, 3, 4);
  EXPECT_EQ(result.max_flow, 4);
  EXPECT_DOUBLE_EQ(result.total_cost, 3 * 1.0 + 1 * 5.0);
}

TEST(Mcmf, ClassicCLRSNetwork) {
  // Max flow 23 in the CLRS example network (costs zero).
  of::MinCostMaxFlow graph(6);
  graph.add_edge(0, 1, 16, 0);
  graph.add_edge(0, 2, 13, 0);
  graph.add_edge(1, 3, 12, 0);
  graph.add_edge(2, 1, 4, 0);
  graph.add_edge(2, 4, 14, 0);
  graph.add_edge(3, 2, 9, 0);
  graph.add_edge(3, 5, 20, 0);
  graph.add_edge(4, 3, 7, 0);
  graph.add_edge(4, 5, 4, 0);
  const auto result = graph.solve(0, 5);
  EXPECT_EQ(result.max_flow, 23);
}

TEST(Mcmf, RequiresCheapDetour) {
  // Min-cost flow must take a residual (backward) step to be optimal:
  // the classic "rerouting" diamond.
  of::MinCostMaxFlow graph(4);
  graph.add_edge(0, 1, 1, 1.0);
  graph.add_edge(0, 2, 1, 10.0);
  graph.add_edge(1, 2, 1, 1.0);
  graph.add_edge(1, 3, 1, 10.0);
  graph.add_edge(2, 3, 1, 1.0);
  const auto result = graph.solve(0, 3);
  EXPECT_EQ(result.max_flow, 2);
  // Optimal: 0-1-2-3 (3) + 0-2... cap(0-2)=1: 0-2-3 blocked by 2-3 cap 1.
  // Paths: 0-1-2-3 cost 3 and 0-2(10)+... 2-3 full -> 0-1-3: 0-1 full.
  // So flow 2 = {0-1-2-3, 0-2-3}? 2-3 has cap 1. Recheck: the two units
  // are 0-1-3 (11) and 0-2-3 (11) or 0-1-2-3 (3) + one of the 11s minus
  // rerouting. Optimum is 0-1-2-3 (3) then 0-2-3 is blocked (2-3 full) ->
  // second path 0-2 + 2-1(residual) + 1-3 = 10 - 1 + 10 = 19. Total 22.
  EXPECT_DOUBLE_EQ(result.total_cost, 22.0);
}

TEST(Mcmf, NegativeCostEdges) {
  of::MinCostMaxFlow graph(3);
  graph.add_edge(0, 1, 2, -5.0);
  graph.add_edge(1, 2, 2, 3.0);
  const auto result = graph.solve(0, 2);
  EXPECT_EQ(result.max_flow, 2);
  EXPECT_DOUBLE_EQ(result.total_cost, 2 * (-5.0 + 3.0));
}

TEST(Mcmf, DemandFeasibility) {
  of::MinCostMaxFlow graph(2);
  graph.add_edge(0, 1, 3, 1.0);
  auto result = graph.solve_with_demand(0, 1, 3);
  EXPECT_TRUE(result.feasible);
  graph.clear_flow();
  result = graph.solve_with_demand(0, 1, 4);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.max_flow, 3);
}

TEST(Mcmf, ClearFlowAllowsResolve) {
  of::MinCostMaxFlow graph(3);
  graph.add_edge(0, 1, 2, 1.0);
  graph.add_edge(1, 2, 2, 1.0);
  const auto first = graph.solve(0, 2);
  graph.clear_flow();
  const auto second = graph.solve(0, 2);
  EXPECT_EQ(first.max_flow, second.max_flow);
  EXPECT_DOUBLE_EQ(first.total_cost, second.total_cost);
}

TEST(Mcmf, DisconnectedSinkZeroFlow) {
  of::MinCostMaxFlow graph(3);
  graph.add_edge(0, 1, 4, 1.0);
  const auto result = graph.solve(0, 2);
  EXPECT_EQ(result.max_flow, 0);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(Mcmf, FlowLimitRespected) {
  of::MinCostMaxFlow graph(2);
  graph.add_edge(0, 1, 100, 1.0);
  const auto result = graph.solve(0, 1, 7);
  EXPECT_EQ(result.max_flow, 7);
}

TEST(Mcmf, RejectsBadArgs) {
  of::MinCostMaxFlow graph(2);
  EXPECT_THROW(graph.add_edge(0, 5, 1, 0.0), operon::util::CheckError);
  EXPECT_THROW(graph.add_edge(0, 1, -1, 0.0), operon::util::CheckError);
  graph.add_edge(0, 1, 1, 0.0);
  EXPECT_THROW(graph.solve(0, 0), operon::util::CheckError);
}

TEST(Mcmf, NearLimitCapacityDoesNotOverflow) {
  // Regression: residual updates on capacities at the guard limit must
  // stay inside int64 — forward flow plus reverse capacity peaks at
  // exactly kMaxEdgeCapacity per edge pair.
  of::MinCostMaxFlow graph(3);
  graph.add_edge(0, 1, of::kMaxEdgeCapacity, 1.0);
  graph.add_edge(1, 2, of::kMaxEdgeCapacity, 1.0);
  const auto result = graph.solve(0, 2);
  EXPECT_EQ(result.max_flow, of::kMaxEdgeCapacity);
  EXPECT_TRUE(std::isfinite(result.total_cost));
  EXPECT_EQ(graph.edge(0).flow, of::kMaxEdgeCapacity);
}

TEST(Mcmf, RejectsCapacityBeyondGuardLimit) {
  of::MinCostMaxFlow graph(2);
  EXPECT_THROW(graph.add_edge(0, 1, of::kMaxEdgeCapacity + 1, 0.0),
               operon::util::CheckError);
}

TEST(Mcmf, RejectsNonFiniteCost) {
  of::MinCostMaxFlow graph(2);
  EXPECT_THROW(
      graph.add_edge(0, 1, 1, std::numeric_limits<double>::infinity()),
      operon::util::CheckError);
  EXPECT_THROW(
      graph.add_edge(0, 1, 1, std::numeric_limits<double>::quiet_NaN()),
      operon::util::CheckError);
}

TEST(Mcmf, NegativeCostCycleIsDetectedNotLooped) {
  // A negative-cost cycle makes shortest path undefined; the SPFA
  // fallback must fail loudly instead of relaxing forever.
  of::MinCostMaxFlow graph(4);
  graph.add_edge(0, 1, 1, 1.0);
  graph.add_edge(1, 2, 5, -3.0);
  graph.add_edge(2, 1, 5, -3.0);
  graph.add_edge(2, 3, 1, 1.0);
  EXPECT_THROW(graph.solve(0, 3), operon::util::CheckError);
}

TEST(Mcmf, StopTokenStopsBetweenAugmentations) {
  // Four unit-capacity parallel paths need four augmentations; a token
  // tripping at the second checkpoint leaves a valid partial flow.
  of::MinCostMaxFlow graph(6);
  for (of::NodeId mid = 1; mid <= 4; ++mid) {
    graph.add_edge(0, mid, 1, static_cast<double>(mid));
    graph.add_edge(mid, 5, 1, 1.0);
  }
  operon::util::StopSource source;
  source.arm(0.0, /*stop_at_checkpoint=*/2);
  const auto result = graph.solve(0, 5, 100, source.token());
  EXPECT_TRUE(result.stopped);
  EXPECT_EQ(result.max_flow, 1);  // one augmentation before the trip
  // Untripped solve still finds the maximum.
  graph.clear_flow();
  const auto full = graph.solve(0, 5);
  EXPECT_FALSE(full.stopped);
  EXPECT_EQ(full.max_flow, 4);
}

// Property: on random graphs, edge flows conserve at internal nodes and
// never exceed capacity.
TEST(McmfProperty, ConservationAndCapacity) {
  operon::util::Rng rng(314);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    of::MinCostMaxFlow graph(n);
    const std::size_t edges = n * 2;
    for (std::size_t e = 0; e < edges; ++e) {
      const auto u = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      auto v = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (u == v) v = (v + 1) % n;
      graph.add_edge(u, v, rng.uniform_int(0, 8), rng.uniform(0.0, 5.0));
    }
    const auto result = graph.solve(0, n - 1);
    std::vector<std::int64_t> net(n, 0);
    for (std::size_t e = 0; e < graph.num_edges(); ++e) {
      const auto& edge = graph.edge(e);
      EXPECT_GE(edge.flow, 0);
      EXPECT_LE(edge.flow, edge.capacity);
      net[edge.from] -= edge.flow;
      net[edge.to] += edge.flow;
    }
    EXPECT_EQ(net[0], -result.max_flow);
    EXPECT_EQ(net[n - 1], result.max_flow);
    for (std::size_t v = 1; v + 1 < n; ++v) EXPECT_EQ(net[v], 0);
  }
}

// Assignment problem: MCMF result must match brute-force minimum.
TEST(McmfProperty, AssignmentMatchesBruteForce) {
  operon::util::Rng rng(2718);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4;  // 4 workers, 4 jobs
    double cost[4][4];
    for (auto& row : cost)
      for (double& c : row) c = rng.uniform(0.0, 10.0);

    // Brute force over permutations.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e18;
    do {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) total += cost[i][perm[i]];
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));

    // MCMF: source -> workers -> jobs -> sink.
    of::MinCostMaxFlow graph(2 + 2 * n);
    const std::size_t s = 0, t = 1;
    for (std::size_t i = 0; i < n; ++i) {
      graph.add_edge(s, 2 + i, 1, 0.0);
      graph.add_edge(2 + n + i, t, 1, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        graph.add_edge(2 + i, 2 + n + j, 1, cost[i][j]);
      }
    }
    const auto result = graph.solve(s, t);
    EXPECT_EQ(result.max_flow, static_cast<std::int64_t>(n));
    EXPECT_NEAR(result.total_cost, best, 1e-9);
  }
}
