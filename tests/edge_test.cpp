// Edge cases across modules that the mainline tests do not reach:
// degenerate geometry, boundary parameter values, parser corner cases,
// and parameterized BI1S quality sweeps.

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/agglomerate.hpp"
#include "core/powermap.hpp"
#include "model/design.hpp"
#include "optical/loss.hpp"
#include "steiner/bi1s.hpp"
#include "steiner/mst.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace os = operon::steiner;
namespace og = operon::geom;
namespace om = operon::model;

// --------------------------------------------------------------------
// BI1S quality sweep: the Steiner ratio guarantees the optimum is never
// below ~0.866 (Euclidean) / 2/3 (rectilinear) of the MST; BI1S must
// stay within [ratio_bound, 1.0] of the MST for any input.

struct Bi1sSweep {
  std::size_t terminals;
  std::uint64_t seed;
};

class Bi1sQuality : public ::testing::TestWithParam<Bi1sSweep> {};

TEST_P(Bi1sQuality, WithinSteinerRatioBounds) {
  const auto [terminals, seed] = GetParam();
  operon::util::Rng rng(seed);
  std::vector<og::Point> pts(terminals);
  for (auto& p : pts) p = {rng.uniform(0, 10000), rng.uniform(0, 10000)};

  for (const auto metric : {os::Metric::Euclidean, os::Metric::Rectilinear}) {
    const double mst = os::mst_length(pts, metric);
    const os::SteinerTree tree = os::bi1s(pts, {.metric = metric});
    const double length = tree.length(metric);
    EXPECT_LE(length, mst + 1e-6);
    // No heuristic can beat the Steiner ratio lower bound.
    const double bound = metric == os::Metric::Euclidean ? 0.866 : 2.0 / 3.0;
    EXPECT_GE(length, mst * bound - 1e-6);
    EXPECT_TRUE(tree.is_connected_tree());
    // Steiner points all have degree >= 3 after cleanup.
    const auto degrees = tree.degrees();
    for (std::size_t v = tree.num_terminals; v < tree.num_points(); ++v) {
      EXPECT_GE(degrees[v], 3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Bi1sQuality,
    ::testing::Values(Bi1sSweep{3, 11}, Bi1sSweep{5, 12}, Bi1sSweep{7, 13},
                      Bi1sSweep{9, 14}, Bi1sSweep{12, 15}, Bi1sSweep{15, 16}));

// --------------------------------------------------------------------
// Degenerate geometry.

TEST(Degenerate, CoincidentTerminalsSteiner) {
  std::vector<og::Point> pts{{5, 5}, {5, 5}, {5, 5}};
  const os::SteinerTree tree = os::bi1s(pts);
  EXPECT_TRUE(tree.is_connected_tree());
  EXPECT_NEAR(tree.length(os::Metric::Euclidean), 0.0, 1e-12);
}

TEST(Degenerate, CollinearTerminals) {
  std::vector<og::Point> pts{{0, 0}, {5, 0}, {10, 0}, {15, 0}};
  const os::SteinerTree tree = os::bi1s(pts);
  EXPECT_NEAR(tree.length(os::Metric::Euclidean), 15.0, 1e-9);
  EXPECT_EQ(tree.num_steiner(), 0u);  // nothing to gain on a line
}

TEST(Degenerate, AgglomerateSinglePin) {
  std::vector<om::PinRef> pins;
  pins.push_back({0, 0, -1, {3, 4}, om::PinRole::Source});
  const auto clusters = operon::cluster::agglomerate_pins(pins, 100.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].center, (og::Point{3, 4}));
}

TEST(Degenerate, AgglomerateEmpty) {
  EXPECT_TRUE(operon::cluster::agglomerate_pins({}, 100.0).empty());
}

TEST(Degenerate, PowerMapSingleCell) {
  using operon::core::PowerMap;
  const og::BBox chip = og::BBox::of({0, 0}, {100, 100});
  const auto map = operon::core::build_power_map(chip, {}, {},
                                                 om::TechParams::dac18_defaults(),
                                                 1);
  EXPECT_EQ(map.optical.size(), 1u);
  EXPECT_DOUBLE_EQ(map.total_optical(), 0.0);
  EXPECT_DOUBLE_EQ(map.optical_hotspot_share(5), 0.0);  // no energy at all
}

// --------------------------------------------------------------------
// Loss model boundaries.

TEST(LossEdge, HugeArmsAndZeroLength) {
  const om::OpticalParams params = om::TechParams::dac18_defaults().optical;
  EXPECT_NEAR(operon::optical::splitting_loss_db(params, 1024),
              10.0 * std::log10(1024.0), 1e-9);
  const auto loss = operon::optical::path_loss(params, 0.0, 0, {});
  EXPECT_DOUBLE_EQ(loss.total_db(), 0.0);
  EXPECT_TRUE(operon::optical::detectable(params, 0.0));
}

TEST(LossEdge, NegativeInputsRejected) {
  const om::OpticalParams params = om::TechParams::dac18_defaults().optical;
  EXPECT_THROW(operon::optical::path_loss(params, -1.0, 0, {}),
               operon::util::CheckError);
  EXPECT_THROW(operon::optical::path_loss(params, 1.0, -1, {}),
               operon::util::CheckError);
  EXPECT_THROW(operon::optical::conversion_energy_pj(params, -1, 0),
               operon::util::CheckError);
}

// --------------------------------------------------------------------
// Parser corner cases.

TEST(ParserEdge, ScientificNotationCoordinates) {
  std::stringstream ss;
  ss << "design sci\nchip 0 0 2e4 2e4\ngroup g\nbit S 1e3 1.5e3 T 1.9e4 5e2\n";
  const om::Design design = om::read_design(ss);
  EXPECT_DOUBLE_EQ(design.chip.xhi, 20000.0);
  EXPECT_DOUBLE_EQ(design.groups[0].bits[0].source.location.x, 1000.0);
  EXPECT_NO_THROW(design.validate());
}

TEST(ParserEdge, WindowsLineEndings) {
  std::stringstream ss;
  ss << "design crlf\r\nchip 0 0 10 10\r\ngroup g\r\nbit S 1 1 T 2 2\r\n";
  const om::Design design = om::read_design(ss);
  EXPECT_EQ(design.name, "crlf");
  EXPECT_EQ(design.groups[0].bits.size(), 1u);
}

TEST(ParserEdge, TruncatedPinRejected) {
  std::stringstream ss;
  ss << "chip 0 0 10 10\ngroup g\nbit S 1\n";
  EXPECT_THROW(om::read_design(ss), operon::util::CheckError);
}

TEST(CliEdge, EqualsInsideValue) {
  const char* argv[] = {"prog", "--expr=a=b"};
  const operon::util::Cli cli(2, argv);
  EXPECT_EQ(cli.get("expr", ""), "a=b");
}

TEST(CliEdge, RepeatedFlagLastWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2"};
  const operon::util::Cli cli(3, argv);
  EXPECT_EQ(cli.get_int("n", 0), 2);
}

// --------------------------------------------------------------------
// RootedTree on every possible root.

TEST(TreeEdge, RootedFromAnyNode) {
  os::SteinerTree tree;
  tree.points = {{0, 0}, {10, 0}, {5, 5}, {5, 0}};
  tree.num_terminals = 3;
  tree.edges = {{0, 3}, {3, 1}, {3, 2}};
  for (std::size_t root = 0; root < tree.num_points(); ++root) {
    const os::RootedTree rooted = os::RootedTree::build(tree, root);
    EXPECT_EQ(rooted.parent[root], root);
    EXPECT_EQ(rooted.postorder.size(), tree.num_points());
    EXPECT_EQ(rooted.postorder.back(), root);  // root last in postorder
    std::size_t child_count = 0;
    for (const auto& kids : rooted.children) child_count += kids.size();
    EXPECT_EQ(child_count, tree.edges.size());
  }
}
