// Tests for the optical physics: Eq. (2) loss composition, Eq. (1)
// conversion energy, detection predicate, and the Fig 3(b) Y-branch
// cascade simulation.

#include <gtest/gtest.h>

#include <cmath>

#include "model/params.hpp"
#include "optical/loss.hpp"
#include "optical/splitter.hpp"
#include "util/check.hpp"

namespace oo = operon::optical;
namespace om = operon::model;

namespace {
const om::OpticalParams kParams = om::TechParams::dac18_defaults().optical;
}

TEST(Loss, SplittingLossIdeal) {
  EXPECT_DOUBLE_EQ(oo::splitting_loss_db(kParams, 1), 0.0);
  EXPECT_NEAR(oo::splitting_loss_db(kParams, 2), 3.0103, 1e-3);
  EXPECT_NEAR(oo::splitting_loss_db(kParams, 4), 6.0206, 1e-3);
  EXPECT_NEAR(oo::splitting_loss_db(kParams, 10), 10.0, 1e-9);
}

TEST(Loss, SplittingLossExcess) {
  om::OpticalParams params = kParams;
  params.splitter_excess_db = 0.3;
  EXPECT_NEAR(oo::splitting_loss_db(params, 2), 3.3103, 1e-3);
  EXPECT_DOUBLE_EQ(oo::splitting_loss_db(params, 1), 0.0);  // pass-through
}

TEST(Loss, SplittingLossRejectsZeroArms) {
  EXPECT_THROW(oo::splitting_loss_db(kParams, 0), operon::util::CheckError);
}

TEST(Loss, PathLossEq2Composition) {
  // 1 cm of waveguide, 3 crossings, one 2-way and one 4-way split:
  // 1.5 + 3*0.52 + 3.0103 + 6.0206 dB.
  const std::vector<int> splits{2, 4};
  const oo::LossBreakdown loss = oo::path_loss(kParams, 1e4, 3, splits);
  EXPECT_NEAR(loss.propagation_db, 1.5, 1e-9);
  EXPECT_NEAR(loss.crossing_db, 1.56, 1e-9);
  EXPECT_NEAR(loss.splitting_db, 9.0309, 1e-3);
  EXPECT_NEAR(loss.total_db(),
              loss.propagation_db + loss.crossing_db + loss.splitting_db,
              1e-12);
}

TEST(Loss, BreakdownAccumulates) {
  oo::LossBreakdown a{1.0, 2.0, 3.0};
  const oo::LossBreakdown b{0.5, 0.25, 0.125};
  a += b;
  EXPECT_DOUBLE_EQ(a.propagation_db, 1.5);
  EXPECT_DOUBLE_EQ(a.crossing_db, 2.25);
  EXPECT_DOUBLE_EQ(a.splitting_db, 3.125);
}

TEST(Loss, ConversionEnergyEq1) {
  EXPECT_DOUBLE_EQ(oo::conversion_energy_pj(kParams, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(oo::conversion_energy_pj(kParams, 1, 1), 0.885);
  EXPECT_DOUBLE_EQ(oo::conversion_energy_pj(kParams, 2, 3),
                   2 * 0.511 + 3 * 0.374);
}

TEST(Loss, SurvivingFraction) {
  EXPECT_DOUBLE_EQ(oo::surviving_fraction(0.0), 1.0);
  EXPECT_NEAR(oo::surviving_fraction(3.0103), 0.5, 1e-4);
  EXPECT_NEAR(oo::surviving_fraction(10.0), 0.1, 1e-12);
}

TEST(Loss, DetectablePredicate) {
  EXPECT_TRUE(oo::detectable(kParams, 0.0));
  EXPECT_TRUE(oo::detectable(kParams, kParams.max_loss_db));
  EXPECT_FALSE(oo::detectable(kParams, kParams.max_loss_db + 0.1));
}

TEST(Splitter, Fig3bTwoCascadedYBranches) {
  // Fig 3(b): two cascaded 50-50 Y-branches -> 4 outputs at 1/4 input.
  const oo::SplitterNode cascade = oo::balanced_cascade(2);
  const auto outputs = oo::simulate(kParams, cascade, 1.0);
  ASSERT_EQ(outputs.size(), 4u);
  for (double p : outputs) EXPECT_NEAR(p, 0.25, 1e-12);
  EXPECT_NEAR(oo::worst_split_loss_db(kParams, cascade), 6.0206, 1e-3);
}

TEST(Splitter, SingleBranchHalves) {
  const oo::SplitterNode y = oo::balanced_cascade(1);
  const auto outputs = oo::simulate(kParams, y, 2.0);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_NEAR(outputs[0], 1.0, 1e-12);
  EXPECT_NEAR(outputs[1], 1.0, 1e-12);
}

TEST(Splitter, DepthZeroIsPassThrough) {
  const oo::SplitterNode wire = oo::balanced_cascade(0);
  const auto outputs = oo::simulate(kParams, wire, 0.7);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(outputs[0], 0.7);
  EXPECT_DOUBLE_EQ(oo::worst_split_loss_db(kParams, wire), 0.0);
}

TEST(Splitter, UnbalancedTreeWorstOutput) {
  // Root splits 2 ways; left arm splits again -> worst output is 1/4.
  oo::SplitterNode root;
  root.arms.push_back(oo::balanced_cascade(1));
  root.arms.push_back(oo::balanced_cascade(0));
  const auto outputs = oo::simulate(kParams, root, 1.0);
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_NEAR(oo::worst_output(kParams, root, 1.0), 0.25, 1e-12);
}

TEST(Splitter, ExcessLossCompounds) {
  om::OpticalParams params = kParams;
  params.splitter_excess_db = 1.0;
  const oo::SplitterNode cascade = oo::balanced_cascade(2);
  // Each level: 3.01 dB ideal + 1 dB excess; two levels ~ 8.02 dB.
  EXPECT_NEAR(oo::worst_split_loss_db(params, cascade), 8.0206, 1e-3);
}

TEST(Splitter, EnergyConservationIdealSplits) {
  // With zero excess loss the output powers must sum to the input.
  for (int depth = 0; depth <= 4; ++depth) {
    const auto outputs =
        oo::simulate(kParams, oo::balanced_cascade(depth), 1.0);
    double sum = 0.0;
    for (double p : outputs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "depth " << depth;
  }
}
