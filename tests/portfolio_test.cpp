// Portfolio solver suite: the SelectionSolver registry contract, the
// canonical solver-name maps, deterministic racing (bit-identical plans
// at any thread count, lane count, and member order), the differential
// check against each fixed solver, deterministic node-budget cuts, the
// ledger-trained race-order selector, and the ledger record fields a
// portfolio run emits.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "codesign/portfolio.hpp"
#include "codesign/solver.hpp"
#include "core/flow.hpp"
#include "lr/lr_solver.hpp"
#include "model/diagnostic.hpp"
#include "obs/ledger.hpp"
#include "util/check.hpp"

namespace oc = operon::core;
namespace ocd = operon::codesign;
namespace om = operon::model;
namespace oo = operon::obs;

namespace {

om::Design race_design(std::uint64_t seed) {
  operon::benchgen::BenchmarkSpec spec;
  spec.name = "portfolio-design";
  spec.num_groups = 10;
  spec.bits_lo = 2;
  spec.bits_hi = 5;
  spec.seed = seed;
  return operon::benchgen::generate_benchmark(spec);
}

/// Candidate sets for a design, prepared once so every solver sees the
/// identical selection instance (table1_main's differential idiom).
std::vector<ocd::CandidateSet> prepare_sets(const om::Design& design) {
  oc::OperonOptions options;
  options.run_wdm_stage = false;
  return oc::run_operon(design, options).sets;
}

oc::OperonResult solve_with(const std::vector<ocd::CandidateSet>& sets,
                            oc::SolverKind solver) {
  oc::OperonOptions options;
  options.solver = solver;
  return oc::run_selection_only(sets, options);
}

bool has_code(const std::vector<om::Diagnostic>& diagnostics,
              om::DiagCode code) {
  for (const om::Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.code == code) return true;
  }
  return false;
}

/// Plan-level semantic equality plus the portfolio outcome fields and
/// every non-timing metric point.
void expect_identical(const oc::OperonResult& a, const oc::OperonResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.stats.power_pj, b.stats.power_pj) << label;
  EXPECT_EQ(a.selection, b.selection) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  EXPECT_EQ(a.stats.winning_solver, b.stats.winning_solver) << label;
  EXPECT_EQ(a.stats.portfolio_order, b.stats.portfolio_order) << label;
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size()) << label;
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].code, b.diagnostics[i].code) << label;
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message) << label;
  }
  const auto semantic = [](const oc::OperonResult& result) {
    std::vector<oo::MetricPoint> points;
    for (const oo::MetricPoint& point : result.stats.metrics.points) {
      if (!point.timing) points.push_back(point);
    }
    return points;
  };
  const std::vector<oo::MetricPoint> sa = semantic(a);
  const std::vector<oo::MetricPoint> sb = semantic(b);
  ASSERT_EQ(sa.size(), sb.size()) << label;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(sa[i] == sb[i]) << label << " point=" << sa[i].name;
  }
}

}  // namespace

// -- solver name maps ------------------------------------------------------

TEST(SolverNames, CanonicalNamesRoundTripWithAliases) {
  for (const oc::SolverKind kind :
       {oc::SolverKind::IlpExact, oc::SolverKind::Lr,
        oc::SolverKind::MipLiteral, oc::SolverKind::Portfolio}) {
    const auto parsed = oc::parse_solver_kind(oc::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << oc::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(oc::parse_solver_kind("ilp"), oc::SolverKind::IlpExact);
  EXPECT_EQ(oc::parse_solver_kind("mip"), oc::SolverKind::MipLiteral);
  EXPECT_EQ(oc::parse_solver_kind("lagrangian-relaxation"),
            oc::SolverKind::Lr);
  EXPECT_FALSE(oc::parse_solver_kind("cp-sat").has_value());
  EXPECT_FALSE(oc::parse_solver_kind("").has_value());

  // The report display name diverges for LR only (a pinned historical
  // string); everything else matches the canonical name.
  EXPECT_EQ(oc::report_solver_name(oc::SolverKind::Lr),
            "lagrangian-relaxation");
  EXPECT_EQ(oc::report_solver_name(oc::SolverKind::IlpExact), "ilp-exact");
  EXPECT_EQ(oc::report_solver_name(oc::SolverKind::Portfolio), "portfolio");
}

TEST(SolverNames, ParseMembersCanonicalizesAndRejects) {
  const std::vector<std::string> members =
      oc::parse_portfolio_members(" lr , ilp ");
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], "lr");
  EXPECT_EQ(members[1], "ilp-exact");

  EXPECT_THROW(oc::parse_portfolio_members(""), operon::util::CheckError);
  EXPECT_THROW(oc::parse_portfolio_members("lr,bogus"),
               operon::util::CheckError);
  EXPECT_THROW(oc::parse_portfolio_members("lr,lagrangian-relaxation"),
               operon::util::CheckError);  // duplicate after canonicalizing
  EXPECT_THROW(oc::parse_portfolio_members("portfolio"),
               operon::util::CheckError);  // a portfolio cannot race itself
}

// -- registry --------------------------------------------------------------

TEST(SolverRegistry, RejectsDuplicatesFindsByNameResolvesLists) {
  ocd::SolverRegistry registry;
  registry.register_solver(
      std::make_shared<ocd::MipSelectionSolver>(ocd::SelectOptions{}));
  EXPECT_THROW(registry.register_solver(std::make_shared<ocd::MipSelectionSolver>(
                   ocd::SelectOptions{})),
               operon::util::CheckError);

  EXPECT_NE(registry.find("mip-literal"), nullptr);
  EXPECT_EQ(registry.find("lr"), nullptr);

  const std::vector<std::string> known = {"mip-literal"};
  EXPECT_EQ(registry.resolve(known).size(), 1u);
  const std::vector<std::string> unknown = {"mip-literal", "bogus"};
  EXPECT_THROW(registry.resolve(unknown), operon::util::CheckError);
}

// -- arbitration -----------------------------------------------------------

TEST(SharedIncumbent, ArbitrationOrderAndPublish) {
  using Entry = ocd::SharedIncumbent::Entry;
  const Entry clean_cheap{2, 10.0, true, false};
  const Entry clean_pricey{0, 20.0, true, true};
  const Entry dirty_cheap{0, 1.0, false, true};
  const Entry clean_cheap_exact{0, 10.0, true, true};

  EXPECT_TRUE(ocd::SharedIncumbent::better(clean_cheap, dirty_cheap));
  EXPECT_TRUE(ocd::SharedIncumbent::better(clean_cheap, clean_pricey));
  // Power tie: the lower canonical rank (more exact member) wins.
  EXPECT_TRUE(ocd::SharedIncumbent::better(clean_cheap_exact, clean_cheap));
  EXPECT_FALSE(ocd::SharedIncumbent::better(clean_cheap, clean_cheap));

  ocd::SharedIncumbent incumbent;
  EXPECT_FALSE(incumbent.best().has_value());
  incumbent.publish(clean_pricey);
  incumbent.publish(clean_cheap);
  incumbent.publish(dirty_cheap);  // worse: must not replace
  ASSERT_TRUE(incumbent.best().has_value());
  EXPECT_EQ(incumbent.best()->power_pj, 10.0);
  EXPECT_TRUE(incumbent.best()->clean);
}

TEST(PortfolioSolverApi, CanonicalRankPrefersExactness) {
  EXPECT_LT(ocd::PortfolioSolver::canonical_rank("ilp-exact"),
            ocd::PortfolioSolver::canonical_rank("mip-literal"));
  EXPECT_LT(ocd::PortfolioSolver::canonical_rank("mip-literal"),
            ocd::PortfolioSolver::canonical_rank("lr"));
  EXPECT_LT(ocd::PortfolioSolver::canonical_rank("lr"),
            ocd::PortfolioSolver::canonical_rank("future-solver"));
}

// -- race-order selector ---------------------------------------------------

TEST(PortfolioSelector, HistoryOrdersTheRaceByPredictedCost) {
  ocd::PortfolioOptions options;
  options.members = {"lr", "ilp-exact"};
  std::vector<std::shared_ptr<const ocd::SelectionSolver>> members;
  const auto lr = std::make_shared<operon::lr::LrSelectionSolver>(
      operon::lr::LrOptions{});
  members.push_back(std::make_shared<ocd::ExactSelectionSolver>(
      ocd::SelectOptions{}, lr));
  members.push_back(lr);
  // members[0] = ilp-exact, members[1] = lr (resolution order).
  std::swap(members[0], members[1]);
  // Now members[0] = lr, members[1] = ilp-exact, matching options.members.

  ocd::InstanceFeatures features;
  features.nets = 100;

  {
    // No history: configuration order.
    ocd::PortfolioSolver solver(options, members);
    const std::vector<std::size_t> order = solver.race_order(features);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u);
  }
  {
    // History says ilp-exact is far faster here: it starts first.
    ocd::PortfolioOptions trained = options;
    trained.history.add_sample("lr", 100.0, 10.0);
    trained.history.add_sample("ilp-exact", 100.0, 0.5);
    ocd::PortfolioSolver solver(trained, members);
    const std::vector<std::size_t> order = solver.race_order(features);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 0u);

    const auto lr_prediction = trained.history.predict_seconds("lr", features);
    ASSERT_TRUE(lr_prediction.has_value());
    EXPECT_GT(*lr_prediction, 0.0);
    EXPECT_FALSE(
        trained.history.predict_seconds("mip-literal", features).has_value());
  }
}

TEST(PortfolioSelector, FromRecordsSkipsPortfolioRows) {
  const auto gauge = [](const char* name, double value, bool timing) {
    oo::MetricPoint point;
    point.name = name;
    point.kind = oo::MetricKind::Gauge;
    point.timing = timing;
    point.value = value;
    return point;
  };
  oo::LedgerRecord lr_record;
  lr_record.solver = "lr";
  lr_record.metrics.push_back(gauge("core.optical_nets", 40.0, false));
  lr_record.metrics.push_back(gauge("core.electrical_nets", 60.0, false));
  lr_record.timings.push_back(gauge("time.selection_s", 2.0, true));
  oo::LedgerRecord race_record = lr_record;
  race_record.solver = "portfolio";

  const std::vector<oo::LedgerRecord> records = {lr_record, race_record};
  const ocd::PortfolioHistory history =
      ocd::PortfolioHistory::from_records(records);
  // Only the plain-lr row contributes: the portfolio row times a whole
  // race, not one solver.
  EXPECT_EQ(history.num_samples(), 1u);
}

// -- racing ----------------------------------------------------------------

TEST(PortfolioRace, MatchesTheBestFixedMemberOnSmallInstances) {
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const om::Design design = race_design(seed);
    const std::vector<ocd::CandidateSet> sets = prepare_sets(design);
    const std::string label = "seed=" + std::to_string(seed);

    const oc::OperonResult lr = solve_with(sets, oc::SolverKind::Lr);
    const oc::OperonResult ilp = solve_with(sets, oc::SolverKind::IlpExact);
    const oc::OperonResult race =
        solve_with(sets, oc::SolverKind::Portfolio);  // members: lr, ilp

    EXPECT_FALSE(race.stats.winning_solver.empty()) << label;
    EXPECT_EQ(race.stats.portfolio_order, "lr,ilp-exact") << label;
    // The fold picks the best member outcome; on instances the exact
    // member proves within the race node budget, that is the optimum.
    const double best =
        std::min(lr.stats.power_pj, ilp.stats.power_pj);
    EXPECT_EQ(race.stats.power_pj, best) << label;
    if (ilp.stats.proven_optimal) {
      EXPECT_EQ(race.stats.power_pj, ilp.stats.power_pj) << label;
    }
    EXPECT_TRUE(race.violations.clean()) << label;
  }
}

TEST(PortfolioRace, BitIdenticalAcrossThreadsLanesAndMemberOrder) {
  const om::Design design = race_design(34);
  oc::OperonOptions base;
  base.solver = oc::SolverKind::Portfolio;
  base.threads = 1;
  const oc::OperonResult reference = oc::run_operon(design, base);
  EXPECT_FALSE(reference.stats.winning_solver.empty());

  for (const std::size_t threads : {2u, 0u}) {
    for (const std::size_t lanes : {0u, 1u, 2u}) {
      oc::OperonOptions options = base;
      options.threads = threads;
      options.portfolio.lanes = lanes;
      const oc::OperonResult result = oc::run_operon(design, options);
      expect_identical(reference, result,
                       "threads=" + std::to_string(threads) +
                           " lanes=" + std::to_string(lanes));
    }
  }

  // Member ORDER is a wall-clock concern: the fold's winner and plan
  // must not move when the configuration lists members differently
  // (only the recorded race_order string changes).
  oc::OperonOptions swapped = base;
  swapped.portfolio.members = {"ilp-exact", "lr"};
  const oc::OperonResult result = oc::run_operon(design, swapped);
  EXPECT_EQ(result.stats.power_pj, reference.stats.power_pj);
  EXPECT_EQ(result.selection, reference.selection);
  EXPECT_EQ(result.stats.winning_solver, reference.stats.winning_solver);
  EXPECT_EQ(result.stats.portfolio_order, "ilp-exact,lr");
}

TEST(PortfolioRace, NodeBudgetCutsAreDeterministicAndDegrade) {
  const om::Design design = race_design(35);
  const std::vector<ocd::CandidateSet> sets = prepare_sets(design);

  oc::OperonOptions options;
  options.solver = oc::SolverKind::Portfolio;
  options.portfolio.race_max_nodes = 1;  // cut the exact lane immediately
  const oc::OperonResult cut = oc::run_selection_only(sets, options);

  // The cut exact lane returns its warm-start incumbent (same power as
  // the LR lane) and wins the tie by canonical rank — degraded, never
  // thrown, and still a feasible plan.
  EXPECT_TRUE(cut.degraded);
  EXPECT_EQ(cut.stats.winning_solver, "ilp-exact");
  EXPECT_TRUE(has_code(cut.diagnostics, om::DiagCode::SolverTimeLimit));
  EXPECT_TRUE(cut.violations.clean());
  const oc::OperonResult lr = solve_with(sets, oc::SolverKind::Lr);
  EXPECT_EQ(cut.stats.power_pj, lr.stats.power_pj);

  // The cut point is a node count, not a clock: re-running at another
  // thread count reproduces the same degraded plan bit-identically.
  oc::OperonOptions parallel = options;
  parallel.threads = 4;
  const oc::OperonResult again = oc::run_selection_only(sets, parallel);
  EXPECT_EQ(again.stats.power_pj, cut.stats.power_pj);
  EXPECT_EQ(again.selection, cut.selection);
  EXPECT_EQ(again.stats.winning_solver, cut.stats.winning_solver);
}

TEST(PortfolioRace, LedgerRecordCarriesWinnerOrderAndMetrics) {
  const om::Design design = race_design(36);
  oc::OperonOptions options;
  options.solver = oc::SolverKind::Portfolio;

  oo::LedgerCollector collector;
  {
    const oo::ScopedLedger scope(collector);
    oo::set_ledger_context("portfolio-case", 36);
    (void)oc::run_operon(design, options);
  }
  ASSERT_EQ(collector.size(), 1u);
  const oo::LedgerRecord record = collector.records()[0];
  EXPECT_EQ(record.solver, "portfolio");
  EXPECT_FALSE(record.winning_solver.empty());
  EXPECT_EQ(record.portfolio_order, "lr,ilp-exact");

  bool members_gauge = false, win_counter = false;
  for (const oo::MetricPoint& point : record.metrics) {
    if (point.name == "portfolio.members") members_gauge = true;
    if (point.name == "portfolio.win." + record.winning_solver) {
      win_counter = true;
    }
  }
  EXPECT_TRUE(members_gauge);
  EXPECT_TRUE(win_counter);

  // The v3 record round-trips exactly through the strict parser.
  EXPECT_EQ(oo::parse_ledger_record(oo::to_json_line(record)), record);
}
