// Options-fingerprint stability suite. The fingerprint is the third
// component of the ledger identity key — serve's result cache and
// compare_ledgers both pair records by it — so its value for a given
// option set must stay stable across refactors, and its field coverage
// must follow the documented rule (DESIGN.md "Service architecture"):
// every semantic field is folded in (budgets included — a time-limited
// run is NOT comparable to an unlimited one), thread count is excluded
// (results are bit-identical at any --threads value).
//
// The golden strings below pin the CURRENT fingerprints. An
// intentional semantic-default change legitimately moves them — retune
// the pins in the same commit and say so; an UNINTENTIONAL change here
// means cache histories silently split (every warm daemon recomputes)
// or, worse, unlike runs pair up.

#include <gtest/gtest.h>

#include <string>

#include "core/flow.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace oc = operon::core;
namespace os = operon::serve;

namespace {

// Retuned 2026-08: the portfolio solver added three semantic fields
// (select.max_nodes, portfolio.members, portfolio.race_max_nodes) to
// the fold — an intentional schema change, moving every golden at once.
TEST(Fingerprint, GoldenDefaultOptions) {
  EXPECT_EQ(oc::options_fingerprint(oc::OperonOptions{}),
            "lr-a7ce067dcf6ee721");
}

TEST(Fingerprint, GoldenSolverVariants) {
  oc::OperonOptions ilp;
  ilp.solver = oc::SolverKind::IlpExact;
  EXPECT_EQ(oc::options_fingerprint(ilp), "ilp-exact-932a8d617c37c244");
  oc::OperonOptions mip;
  mip.solver = oc::SolverKind::MipLiteral;
  EXPECT_EQ(oc::options_fingerprint(mip), "mip-literal-51c8be36d36f4cc7");
}

TEST(Fingerprint, GoldenServeDefaultJob) {
  // The fingerprint a default serve submit resolves to (ilp_limit_s
  // 20, lr solver). The serve cache key and every warm daemon restart
  // depend on this staying put.
  EXPECT_EQ(os::job_key(os::JobSpec{}), "I1/1/lr-ed3748f80c900d7d");
}

TEST(Fingerprint, ThreadCountIsExcluded) {
  oc::OperonOptions base;
  const std::string fingerprint = oc::options_fingerprint(base);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}, std::size_t{64}}) {
    oc::OperonOptions variant;
    variant.threads = threads;
    EXPECT_EQ(oc::options_fingerprint(variant), fingerprint)
        << "threads=" << threads << " changed the fingerprint";
  }
}

TEST(Fingerprint, RunBudgetsAreIncluded) {
  const std::string base = oc::options_fingerprint(oc::OperonOptions{});

  oc::OperonOptions time_limited;
  time_limited.run_time_limit_s = 1.5;
  EXPECT_NE(oc::options_fingerprint(time_limited), base);

  oc::OperonOptions replay;
  replay.stop_at_checkpoint = 3;
  EXPECT_NE(oc::options_fingerprint(replay), base);

  oc::OperonOptions solver_budget;
  solver_budget.select.time_limit_s = 7.0;
  EXPECT_NE(oc::options_fingerprint(solver_budget), base);

  oc::OperonOptions loss;
  loss.params.optical.max_loss_db = 12.0;
  EXPECT_NE(oc::options_fingerprint(loss), base);
}

TEST(Fingerprint, SemanticFieldsSeparateCleanly) {
  // Distinct semantic variants must not collide pairwise (a collision
  // would silently pair unlike runs in the ledger).
  std::vector<std::string> fingerprints;
  {
    oc::OperonOptions o;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.solver = oc::SolverKind::IlpExact;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.run_wdm_stage = false;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.run_time_limit_s = 0.25;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.stop_at_checkpoint = 17;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    for (std::size_t j = i + 1; j < fingerprints.size(); ++j) {
      EXPECT_NE(fingerprints[i], fingerprints[j])
          << "variants " << i << " and " << j << " collide";
    }
  }
}

TEST(Fingerprint, PortfolioSemanticsIncludedWallClockKnobsExcluded) {
  oc::OperonOptions base;
  base.solver = oc::SolverKind::Portfolio;
  const std::string fingerprint = oc::options_fingerprint(base);
  ASSERT_EQ(fingerprint.rfind("portfolio-", 0), 0u) << fingerprint;

  // Member list and the race node budget change the raced result —
  // semantic, so each must move the fingerprint.
  oc::OperonOptions members = base;
  members.portfolio.members = {"lr", "mip-literal"};
  EXPECT_NE(oc::options_fingerprint(members), fingerprint);

  oc::OperonOptions budget = base;
  budget.portfolio.race_max_nodes = 1000;
  EXPECT_NE(oc::options_fingerprint(budget), fingerprint);

  oc::OperonOptions nodes = base;
  nodes.select.max_nodes = 5000;
  EXPECT_NE(oc::options_fingerprint(nodes), fingerprint);

  // Lane concurrency and selector history only reorder/parallelize the
  // race (wall clock); the folded winner is invariant, so neither may
  // split ledger histories.
  oc::OperonOptions lanes = base;
  lanes.portfolio.lanes = 2;
  EXPECT_EQ(oc::options_fingerprint(lanes), fingerprint);

  oc::OperonOptions history = base;
  history.portfolio.history.add_sample("lr", 100.0, 0.5);
  EXPECT_EQ(oc::options_fingerprint(history), fingerprint);
}

TEST(Fingerprint, ServeJobKeyLayout) {
  os::JobSpec spec;
  spec.groups = 4;
  spec.bits_lo = 2;
  spec.bits_hi = 4;
  spec.seed = 11;
  const std::string key = os::job_key(spec);
  const std::string expected_prefix = "custom-g4-b2-4/11/";
  ASSERT_EQ(key.rfind(expected_prefix, 0), 0u) << key;
  // Tenant, priority, and wait flags are scheduling concerns — they
  // must NOT move the key (or identical runs would never dedup).
  os::JobSpec scheduled = spec;
  scheduled.tenant = "someone-else";
  scheduled.priority = 9;
  EXPECT_EQ(os::job_key(scheduled), key);
}

}  // namespace
