// Options-fingerprint stability suite. The fingerprint is the third
// component of the ledger identity key — serve's result cache and
// compare_ledgers both pair records by it — so its value for a given
// option set must stay stable across refactors, and its field coverage
// must follow the documented rule (DESIGN.md "Service architecture"):
// every semantic field is folded in (budgets included — a time-limited
// run is NOT comparable to an unlimited one), thread count is excluded
// (results are bit-identical at any --threads value).
//
// The golden strings below pin the CURRENT fingerprints. An
// intentional semantic-default change legitimately moves them — retune
// the pins in the same commit and say so; an UNINTENTIONAL change here
// means cache histories silently split (every warm daemon recomputes)
// or, worse, unlike runs pair up.

#include <gtest/gtest.h>

#include <string>

#include "core/flow.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace oc = operon::core;
namespace os = operon::serve;

namespace {

TEST(Fingerprint, GoldenDefaultOptions) {
  EXPECT_EQ(oc::options_fingerprint(oc::OperonOptions{}),
            "lr-241b85f3edbc1b56");
}

TEST(Fingerprint, GoldenSolverVariants) {
  oc::OperonOptions ilp;
  ilp.solver = oc::SolverKind::IlpExact;
  EXPECT_EQ(oc::options_fingerprint(ilp), "ilp-exact-e371fbdd75e42af1");
  oc::OperonOptions mip;
  mip.solver = oc::SolverKind::MipLiteral;
  EXPECT_EQ(oc::options_fingerprint(mip), "mip-literal-ffd369daf5c74b9a");
}

TEST(Fingerprint, GoldenServeDefaultJob) {
  // The fingerprint a default serve submit resolves to (ilp_limit_s
  // 20, lr solver). The serve cache key and every warm daemon restart
  // depend on this staying put.
  EXPECT_EQ(os::job_key(os::JobSpec{}), "I1/1/lr-762befb437412ada");
}

TEST(Fingerprint, ThreadCountIsExcluded) {
  oc::OperonOptions base;
  const std::string fingerprint = oc::options_fingerprint(base);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}, std::size_t{64}}) {
    oc::OperonOptions variant;
    variant.threads = threads;
    EXPECT_EQ(oc::options_fingerprint(variant), fingerprint)
        << "threads=" << threads << " changed the fingerprint";
  }
}

TEST(Fingerprint, RunBudgetsAreIncluded) {
  const std::string base = oc::options_fingerprint(oc::OperonOptions{});

  oc::OperonOptions time_limited;
  time_limited.run_time_limit_s = 1.5;
  EXPECT_NE(oc::options_fingerprint(time_limited), base);

  oc::OperonOptions replay;
  replay.stop_at_checkpoint = 3;
  EXPECT_NE(oc::options_fingerprint(replay), base);

  oc::OperonOptions solver_budget;
  solver_budget.select.time_limit_s = 7.0;
  EXPECT_NE(oc::options_fingerprint(solver_budget), base);

  oc::OperonOptions loss;
  loss.params.optical.max_loss_db = 12.0;
  EXPECT_NE(oc::options_fingerprint(loss), base);
}

TEST(Fingerprint, SemanticFieldsSeparateCleanly) {
  // Distinct semantic variants must not collide pairwise (a collision
  // would silently pair unlike runs in the ledger).
  std::vector<std::string> fingerprints;
  {
    oc::OperonOptions o;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.solver = oc::SolverKind::IlpExact;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.run_wdm_stage = false;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.run_time_limit_s = 0.25;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  {
    oc::OperonOptions o;
    o.stop_at_checkpoint = 17;
    fingerprints.push_back(oc::options_fingerprint(o));
  }
  for (std::size_t i = 0; i < fingerprints.size(); ++i) {
    for (std::size_t j = i + 1; j < fingerprints.size(); ++j) {
      EXPECT_NE(fingerprints[i], fingerprints[j])
          << "variants " << i << " and " << j << " collide";
    }
  }
}

TEST(Fingerprint, ServeJobKeyLayout) {
  os::JobSpec spec;
  spec.groups = 4;
  spec.bits_lo = 2;
  spec.bits_hi = 4;
  spec.seed = 11;
  const std::string key = os::job_key(spec);
  const std::string expected_prefix = "custom-g4-b2-4/11/";
  ASSERT_EQ(key.rfind(expected_prefix, 0), 0u) << key;
  // Tenant, priority, and wait flags are scheduling concerns — they
  // must NOT move the key (or identical runs would never dedup).
  os::JobSpec scheduled = spec;
  scheduled.tenant = "someone-else";
  scheduled.priority = 9;
  EXPECT_EQ(os::job_key(scheduled), key);
}

}  // namespace
