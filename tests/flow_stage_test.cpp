// Tests for core-flow orchestration options and stage wiring that the
// integration tests do not cover: WDM stage toggling, solver equivalence
// plumbing, per-stage timing bookkeeping, processing capacity override,
// and report/selection consistency.

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "util/check.hpp"

namespace ocore = operon::core;
namespace om = operon::model;

namespace {

om::Design fixture(std::uint64_t seed, std::size_t groups = 10) {
  operon::benchgen::BenchmarkSpec spec;
  spec.num_groups = groups;
  spec.bits_lo = 3;
  spec.bits_hi = 9;
  spec.seed = seed;
  return operon::benchgen::generate_benchmark(spec);
}

}  // namespace

TEST(FlowStage, WdmStageToggle) {
  const om::Design design = fixture(1001);
  ocore::OperonOptions with;
  with.run_wdm_stage = true;
  ocore::OperonOptions without = with;
  without.run_wdm_stage = false;

  const auto a = ocore::run_operon(design, with);
  const auto b = ocore::run_operon(design, without);
  EXPECT_GT(a.wdm_plan.connections.size(), 0u);
  EXPECT_EQ(b.wdm_plan.connections.size(), 0u);
  EXPECT_EQ(b.wdm_plan.initial_wdms, 0u);
  EXPECT_DOUBLE_EQ(b.stats.times.wdm_s, 0.0);
  // The selection itself is independent of the WDM stage.
  EXPECT_EQ(a.selection, b.selection);
  EXPECT_DOUBLE_EQ(a.stats.power_pj, b.stats.power_pj);
}

TEST(FlowStage, CapacityOverrideReclusters) {
  // WDM capacity flows from params into the K-Means capacity: halving it
  // can only increase (or keep) the hyper-net count for wide groups.
  operon::benchgen::BenchmarkSpec spec;
  spec.num_groups = 6;
  spec.bits_lo = 20;
  spec.bits_hi = 30;
  spec.seed = 1002;
  const om::Design design = operon::benchgen::generate_benchmark(spec);

  ocore::OperonOptions wide;
  wide.run_wdm_stage = false;
  ocore::OperonOptions narrow = wide;
  narrow.params.optical.wdm_capacity = 8;

  const auto a = ocore::run_operon(design, wide);
  const auto b = ocore::run_operon(design, narrow);
  EXPECT_GT(b.processing.num_hyper_nets(), a.processing.num_hyper_nets());
  for (const auto& net : b.processing.hyper_nets) {
    EXPECT_LE(net.bit_count(), 8u);
  }
}

TEST(FlowStage, StageTimesAccount) {
  const om::Design design = fixture(1003);
  ocore::OperonOptions options;
  const auto result = ocore::run_operon(design, options);
  EXPECT_GE(result.stats.times.processing_s, 0.0);
  EXPECT_GE(result.stats.times.generation_s, 0.0);
  EXPECT_GE(result.stats.times.selection_s, 0.0);
  EXPECT_GE(result.stats.times.wdm_s, 0.0);
  EXPECT_NEAR(result.stats.times.total_s(),
              result.stats.times.processing_s + result.stats.times.generation_s +
                  result.stats.times.selection_s + result.stats.times.wdm_s,
              1e-12);
}

TEST(FlowStage, NetCountsPartitionSelection) {
  const om::Design design = fixture(1004, 16);
  ocore::OperonOptions options;
  const auto result = ocore::run_operon(design, options);
  EXPECT_EQ(result.stats.optical_nets + result.stats.electrical_nets,
            result.sets.size());
  std::size_t optical = 0;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    if (!result.sets[i].options[result.selection[i]].pure_electrical()) {
      ++optical;
    }
  }
  EXPECT_EQ(optical, result.stats.optical_nets);
}

TEST(FlowStage, MipLiteralSolverOnTinyDesign) {
  const om::Design design = fixture(1005, 4);
  ocore::OperonOptions mip;
  mip.solver = ocore::SolverKind::MipLiteral;
  mip.select.time_limit_s = 20.0;
  mip.run_wdm_stage = false;
  const auto a = ocore::run_operon(design, mip);

  ocore::OperonOptions exact = mip;
  exact.solver = ocore::SolverKind::IlpExact;
  const auto b = ocore::run_operon(design, exact);

  EXPECT_TRUE(a.violations.clean());
  EXPECT_TRUE(b.violations.clean());
  if (a.stats.proven_optimal && b.stats.proven_optimal) {
    EXPECT_NEAR(a.stats.power_pj, b.stats.power_pj, 1e-6);
  }
}

TEST(FlowStage, InvalidParamsRejectedWithMessage) {
  const om::Design design = fixture(1006);
  ocore::OperonOptions options;
  options.params.optical.max_loss_db = 0.0;
  try {
    ocore::run_operon(design, options);
    FAIL() << "expected CheckError";
  } catch (const operon::util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("technology parameters"),
              std::string::npos);
  }
}

TEST(FlowStage, SelectionGuardBandMonotone) {
  // Tightening lm by a guard band does not decrease total power (small
  // slack because the default LR solver is heuristic).
  const om::Design design = fixture(1007, 14);
  double previous = 0.0;
  for (const double lm : {20.0, 16.0, 12.0, 8.0}) {
    ocore::OperonOptions options;
    options.params.optical.max_loss_db = lm;
    options.run_wdm_stage = false;
    const auto result = ocore::run_operon(design, options);
    EXPECT_TRUE(result.violations.clean()) << "lm=" << lm;
    EXPECT_GE(result.stats.power_pj, previous * 0.98 - 1e-6) << "lm=" << lm;
    previous = result.stats.power_pj;
  }
}
