// Tests for the Monte-Carlo variation/yield model.

#include <gtest/gtest.h>

#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/variation.hpp"
#include "core/flow.hpp"
#include "util/check.hpp"

namespace oc = operon::codesign;
namespace om = operon::model;

namespace {

struct Fixture {
  om::Design design;
  om::TechParams params = om::TechParams::dac18_defaults();
  std::vector<oc::CandidateSet> sets;
  oc::Selection selection;

  explicit Fixture(std::uint64_t seed, std::size_t groups = 12) {
    operon::benchgen::BenchmarkSpec spec;
    spec.num_groups = groups;
    spec.bits_lo = 2;
    spec.bits_hi = 8;
    spec.seed = seed;
    design = operon::benchgen::generate_benchmark(spec);
    operon::cluster::SignalProcessingOptions processing;
    const auto nets = operon::cluster::build_hyper_nets(design, processing);
    sets = oc::generate_candidates(design, nets.hyper_nets, params);
    oc::SelectionEvaluator evaluator(sets, params);
    selection = evaluator.peel(evaluator.min_power_selection());
  }
};

}  // namespace

TEST(Variation, AllElectricalAlwaysYields) {
  Fixture fx(801);
  oc::SelectionEvaluator evaluator(fx.sets, fx.params);
  const auto yield =
      oc::estimate_yield(evaluator, evaluator.all_electrical(), {});
  EXPECT_DOUBLE_EQ(yield.design_yield, 1.0);
  EXPECT_DOUBLE_EQ(yield.path_yield, 1.0);
  EXPECT_EQ(yield.optical_paths, 0u);
}

TEST(Variation, ZeroSigmaMatchesNominal) {
  Fixture fx(802);
  oc::SelectionEvaluator evaluator(fx.sets, fx.params);
  oc::VariationParams zero;
  zero.alpha_sigma_frac = 0.0;
  zero.crossing_sigma_db = 0.0;
  zero.splitter_sigma_db = 0.0;
  zero.detector_sigma_db = 0.0;
  zero.samples = 10;
  const auto yield = oc::estimate_yield(evaluator, fx.selection, zero);
  // Feasible nominal selection with no noise: perfect yield.
  EXPECT_DOUBLE_EQ(yield.design_yield, 1.0);
  EXPECT_GE(yield.worst_nominal_margin_db, -1e-9);
  EXPECT_GE(yield.mean_nominal_margin_db, yield.worst_nominal_margin_db);
}

TEST(Variation, DeterministicForSeed) {
  Fixture fx(803);
  oc::SelectionEvaluator evaluator(fx.sets, fx.params);
  oc::VariationParams params;
  params.samples = 500;
  const auto a = oc::estimate_yield(evaluator, fx.selection, params);
  const auto b = oc::estimate_yield(evaluator, fx.selection, params);
  EXPECT_DOUBLE_EQ(a.design_yield, b.design_yield);
  EXPECT_DOUBLE_EQ(a.path_yield, b.path_yield);
}

TEST(Variation, MoreNoiseNeverHelps) {
  Fixture fx(804, 20);
  oc::SelectionEvaluator evaluator(fx.sets, fx.params);
  double previous = 1.1;
  for (double scale : {0.25, 1.0, 4.0}) {
    oc::VariationParams params;
    params.alpha_sigma_frac = 0.08 * scale;
    params.crossing_sigma_db = 0.05 * scale;
    params.splitter_sigma_db = 0.25 * scale;
    params.detector_sigma_db = 0.5 * scale;
    params.samples = 1500;
    const auto yield = oc::estimate_yield(evaluator, fx.selection, params);
    EXPECT_LE(yield.path_yield, previous + 0.02) << "scale " << scale;
    previous = yield.path_yield;
  }
}

TEST(Laser, WallplugExponentialInLoss) {
  operon::optical::LaserParams params;
  const double p0 = operon::optical::laser_wallplug_mw(params, 0.0);
  const double p10 = operon::optical::laser_wallplug_mw(params, 10.0);
  const double p20 = operon::optical::laser_wallplug_mw(params, 20.0);
  EXPECT_GT(p0, 0.0);
  EXPECT_NEAR(p10 / p0, 10.0, 1e-9);   // +10 dB = 10x photons
  EXPECT_NEAR(p20 / p0, 100.0, 1e-9);  // +20 dB = 100x
  // Sensitivity -17 dBm, coupling 1 dB, 10% wall-plug at 0 dB loss:
  // 10^(-16/10) mW / 0.1 = 0.251 mW.
  EXPECT_NEAR(p0, std::pow(10.0, -1.6) / 0.1, 1e-9);
}

TEST(Laser, InvalidParamsRejected) {
  operon::optical::LaserParams params;
  params.wallplug_efficiency = 0.0;
  EXPECT_THROW(operon::optical::laser_wallplug_mw(params, 1.0),
               operon::util::CheckError);
  params.wallplug_efficiency = 0.1;
  EXPECT_THROW(operon::optical::laser_wallplug_mw(params, -1.0),
               operon::util::CheckError);
}

TEST(Laser, BudgetAccountsChannelsAndAllElectricalIsFree) {
  Fixture fx(806);
  oc::SelectionEvaluator evaluator(fx.sets, fx.params);
  const auto zero = oc::laser_budget(evaluator, evaluator.all_electrical());
  EXPECT_DOUBLE_EQ(zero.total_mw, 0.0);
  EXPECT_EQ(zero.channels, 0u);

  const auto budget = oc::laser_budget(evaluator, fx.selection);
  EXPECT_GT(budget.total_mw, 0.0);
  EXPECT_GT(budget.channels, 0u);
  EXPECT_GE(budget.worst_channel_mw,
            budget.total_mw / static_cast<double>(budget.channels) - 1e-9);
  EXPECT_GE(budget.mean_path_loss_db, 0.0);
}

TEST(Variation, GuardBandImprovesYield) {
  // Route against lm - 3 dB, evaluate against lm: margins at least 3 dB,
  // so yield beats the unguarded selection.
  operon::benchgen::BenchmarkSpec spec;
  spec.num_groups = 16;
  spec.bits_lo = 2;
  spec.bits_hi = 6;
  spec.seed = 805;
  const om::Design design = operon::benchgen::generate_benchmark(spec);

  const om::TechParams nominal = om::TechParams::dac18_defaults();
  om::TechParams guarded = nominal;
  guarded.optical.max_loss_db -= 3.0;

  operon::core::OperonOptions unguarded_options;
  unguarded_options.params = nominal;
  unguarded_options.run_wdm_stage = false;
  const auto unguarded = operon::core::run_operon(design, unguarded_options);

  operon::core::OperonOptions guarded_options = unguarded_options;
  guarded_options.params = guarded;
  const auto with_guard = operon::core::run_operon(design, guarded_options);

  oc::SelectionEvaluator nominal_eval_a(unguarded.sets, nominal);
  oc::SelectionEvaluator nominal_eval_b(with_guard.sets, nominal);
  oc::VariationParams variation;
  variation.samples = 1500;
  const auto yield_unguarded =
      oc::estimate_yield(nominal_eval_a, unguarded.selection, variation);
  const auto yield_guarded =
      oc::estimate_yield(nominal_eval_b, with_guard.selection, variation);

  EXPECT_GE(yield_guarded.worst_nominal_margin_db, 3.0 - 1e-6);
  EXPECT_GE(yield_guarded.design_yield, yield_unguarded.design_yield - 0.02);
  // The guard band costs power (or is free when unconstrained).
  EXPECT_GE(with_guard.stats.power_pj, unguarded.stats.power_pj - 1e-9);
}
