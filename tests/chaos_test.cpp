// Chaos suite: the crash-safety contract (DESIGN.md "Crash safety &
// recovery") under simulated SIGKILL aftermaths. The crash-fault
// corruptors reproduce the wreckage a killed daemon leaves behind
// (torn ledger tail, truncated journal, stale stage file, half-written
// frame); the tests hold read_ledger_salvage, truncate_torn_ledger_tail,
// JobJournal::replay, and Server --recover to their promises: never
// throw on wreckage, re-admit exactly the owed jobs in journal order,
// recompute nothing the ledger already holds, and converge on a ledger
// semantically identical to an uninterrupted run.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/corrupt.hpp"
#include "obs/ledger.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ob = operon::benchgen;
namespace oo = operon::obs;
namespace os = operon::serve;
namespace ou = operon::util;
namespace fs = std::filesystem;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// A tiny custom-generator job spec (sub-second compute).
os::JobSpec tiny_spec(std::uint64_t seed) {
  os::JobSpec spec;
  spec.groups = 4;
  spec.bits_lo = 2;
  spec.bits_hi = 4;
  spec.seed = seed;
  spec.ilp_limit_s = 5.0;
  return spec;
}

os::Request submit_request(const os::JobSpec& spec, bool wait) {
  os::Request request;
  request.op = os::Op::Submit;
  request.spec = spec;
  request.wait = wait;
  return request;
}

oo::LedgerRecord record_for(const std::string& case_id, std::uint64_t seed) {
  oo::LedgerRecord record;
  record.case_id = case_id;
  record.seed = seed;
  record.options = "opts";
  record.solver = "lr";
  return record;
}

std::size_t stage_file_count(const std::string& ledger_path) {
  const fs::path ledger(ledger_path);
  fs::path dir = ledger.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = ledger.filename().string() + ".tmp";
  std::size_t count = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

// -- crash-fault corruptors ------------------------------------------------

TEST(CrashFaults, KindsEnumerateAndName) {
  const std::vector<ob::CrashFaultKind> kinds = ob::all_crash_fault_kinds();
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(ob::crash_fault_name(ob::CrashFaultKind::TornLedgerTail),
            "torn-ledger-tail");
  EXPECT_EQ(ob::crash_fault_name(ob::CrashFaultKind::TruncatedJournal),
            "truncated-journal");
  EXPECT_EQ(ob::crash_fault_name(ob::CrashFaultKind::StaleStageFile),
            "stale-stage-file");
  EXPECT_EQ(ob::crash_fault_name(ob::CrashFaultKind::HalfWrittenFrame),
            "half-written-frame");
}

TEST(CrashFaults, TornTailIsSalvagedThenRepaired) {
  const std::string path = temp_path("chaos_torn.jsonl");
  std::remove(path.c_str());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    oo::append_ledger_record(path, record_for("I1", seed));
  }
  ou::Rng rng(11);
  ob::inject_crash_fault(path, ob::CrashFaultKind::TornLedgerTail, rng);

  // Strict read refuses; salvage keeps the intact prefix.
  EXPECT_THROW(oo::read_ledger(path), ou::CheckError);
  const oo::LedgerSalvage salvage = oo::read_ledger_salvage(path);
  EXPECT_EQ(salvage.records.size(), 2u);
  EXPECT_EQ(salvage.skipped, 1u);
  ASSERT_EQ(salvage.findings.size(), 1u);
  EXPECT_FALSE(salvage.missing);

  // Repair truncates only the torn line; the file is strict-parseable
  // again and a fresh append no longer welds onto garbage.
  EXPECT_GT(oo::truncate_torn_ledger_tail(path), 0u);
  oo::append_ledger_record(path, record_for("I1", 9));
  const std::vector<oo::LedgerRecord> records = oo::read_ledger(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].seed, 9u);
  std::remove(path.c_str());
}

TEST(CrashFaults, HalfWrittenFrameIsInvisibleToSalvage) {
  const std::string path = temp_path("chaos_half.jsonl");
  std::remove(path.c_str());
  oo::append_ledger_record(path, record_for("I2", 5));
  ou::Rng rng(12);
  ob::inject_crash_fault(path, ob::CrashFaultKind::HalfWrittenFrame, rng);
  const oo::LedgerSalvage salvage = oo::read_ledger_salvage(path);
  EXPECT_EQ(salvage.records.size(), 1u);
  EXPECT_EQ(salvage.skipped, 1u);
  EXPECT_GT(oo::truncate_torn_ledger_tail(path), 0u);
  EXPECT_EQ(oo::read_ledger(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(CrashFaults, StaleStageFileIsSweptWithoutTouchingTheLedger) {
  const std::string path = temp_path("chaos_stage.jsonl");
  std::remove(path.c_str());
  oo::append_ledger_record(path, record_for("I3", 1));
  ou::Rng rng(13);
  ob::inject_crash_fault(path, ob::CrashFaultKind::StaleStageFile, rng);
  ASSERT_GE(stage_file_count(path), 1u);
  EXPECT_GE(oo::remove_stale_ledger_stages(path), 1u);
  EXPECT_EQ(stage_file_count(path), 0u);
  EXPECT_EQ(oo::read_ledger(path).size(), 1u);  // the ledger was intact
  std::remove(path.c_str());
}

TEST(CrashFaults, TruncatedJournalStillReplays) {
  const std::string path = temp_path("chaos_trunc_journal.jsonl");
  std::remove(path.c_str());
  os::JobJournal journal(path);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    journal.accepted(tiny_spec(seed));
  }
  ou::Rng rng(14);
  ob::inject_crash_fault(path, ob::CrashFaultKind::TruncatedJournal, rng);
  // Whatever the cut point, replay never throws and every surviving
  // entry is intact (the cut line is skipped, not misparsed).
  os::JobJournal::Replay replay;
  ASSERT_NO_THROW(replay = os::JobJournal::replay(path));
  EXPECT_LE(replay.pending.size(), 4u);
  EXPECT_LE(replay.skipped, 1u);
  for (const os::JobJournal::PendingJob& pending : replay.pending) {
    EXPECT_GE(pending.spec.seed, 1u);
    EXPECT_LE(pending.spec.seed, 4u);
  }
  std::remove(path.c_str());
}

// -- journal replay semantics ----------------------------------------------

TEST(JobJournal, PendingIsAcceptedMinusSettledInSeqOrder) {
  const std::string path = temp_path("chaos_journal_pending.jsonl");
  std::remove(path.c_str());
  os::JobJournal journal(path);
  const std::uint64_t a = journal.accepted(tiny_spec(1));
  const std::uint64_t b = journal.accepted(tiny_spec(2));
  const std::uint64_t c = journal.accepted(tiny_spec(3));
  journal.settled(b, "completed");
  journal.settled(a, "failed");

  const os::JobJournal::Replay replay = os::JobJournal::replay(path);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].seq, c);
  EXPECT_EQ(replay.pending[0].spec.seed, 3u);
  EXPECT_EQ(replay.pending[0].spec.groups, 4u);
  EXPECT_EQ(replay.max_seq, 5u);  // 3 accepted + 2 settle entries
  EXPECT_EQ(replay.skipped, 0u);
  EXPECT_FALSE(replay.missing);
  std::remove(path.c_str());
}

TEST(JobJournal, RecoveredMarkerClosesTheOldObligation) {
  const std::string path = temp_path("chaos_journal_recovered.jsonl");
  std::remove(path.c_str());
  os::JobJournal journal(path);
  const std::uint64_t old_seq = journal.accepted(tiny_spec(7));
  // Recovery order: new accepted FIRST, recovered marker second — a
  // crash between the two duplicates (cache-deduplicated), never loses.
  const std::uint64_t new_seq = journal.accepted(tiny_spec(7));
  journal.recovered(old_seq);

  const os::JobJournal::Replay replay = os::JobJournal::replay(path);
  ASSERT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.pending[0].seq, new_seq);
  std::remove(path.c_str());
}

TEST(JobJournal, SeqNumberingContinuesAcrossReopen) {
  const std::string path = temp_path("chaos_journal_seq.jsonl");
  std::remove(path.c_str());
  std::uint64_t max_seq = 0;
  {
    os::JobJournal journal(path);
    journal.accepted(tiny_spec(1));
    journal.accepted(tiny_spec(2));
    max_seq = os::JobJournal::replay(path).max_seq;
    EXPECT_EQ(max_seq, 2u);
  }
  os::JobJournal reopened(path);
  reopened.start_from(max_seq);
  const std::uint64_t next = reopened.accepted(tiny_spec(3));
  EXPECT_EQ(next, max_seq + 1);  // no seq reuse: `of` stays unambiguous
  EXPECT_EQ(os::JobJournal::replay(path).pending.size(), 3u);
  std::remove(path.c_str());
}

TEST(JobJournal, ReplayToleratesGarbageLines) {
  const std::string path = temp_path("chaos_journal_garbage.jsonl");
  std::remove(path.c_str());
  os::JobJournal journal(path);
  journal.accepted(tiny_spec(1));
  {
    std::ofstream os(path, std::ios::app);
    os << "{\"journal\":1,\"seq\":99,\"event\":\"acc\n";  // malformed
    os << "not json at all\n";
  }
  const os::JobJournal::Replay replay = os::JobJournal::replay(path);
  EXPECT_EQ(replay.pending.size(), 1u);
  EXPECT_EQ(replay.skipped, 2u);
  std::remove(path.c_str());
}

TEST(JobJournal, MissingFileReplaysEmpty) {
  const os::JobJournal::Replay replay =
      os::JobJournal::replay(temp_path("chaos_journal_missing.jsonl"));
  EXPECT_TRUE(replay.missing);
  EXPECT_TRUE(replay.pending.empty());
  EXPECT_EQ(replay.max_seq, 0u);
}

// -- end-to-end recovery ---------------------------------------------------

TEST(ChaosRecovery, RecoverReplaysOwedJobsAndMatchesUninterruptedRun) {
  const std::string ledger = temp_path("chaos_e2e_ledger.jsonl");
  const std::string journal = temp_path("chaos_e2e_journal.jsonl");
  const std::string reference = temp_path("chaos_e2e_reference.jsonl");
  for (const std::string& path : {ledger, journal, reference}) {
    std::remove(path.c_str());
  }

  // Reference: the same five jobs, uninterrupted.
  {
    os::ServerConfig config;
    config.ledger_path = reference;
    config.workers = 2;
    os::Server server(config);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const os::Response done =
          server.handle(submit_request(tiny_spec(seed), /*wait=*/true));
      ASSERT_TRUE(done.ok) << done.error << ": " << done.detail;
    }
    server.shutdown(false);
  }

  // "Crashed" daemon: seeds 1..3 completed and settled (workers=1 so
  // the append order is the submit order), then the crash aftermath is
  // reproduced by hand — seed 3's ledger append torn mid-line with its
  // settle lost, seeds 4..5 accepted but never started, a stale stage
  // file from a dead writer, and a half-written frame on the journal.
  {
    os::ServerConfig config;
    config.ledger_path = ledger;
    config.journal_path = journal;
    config.workers = 1;
    os::Server server(config);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ASSERT_TRUE(
          server.handle(submit_request(tiny_spec(seed), /*wait=*/true)).ok);
    }
    server.shutdown(false);
  }
  const std::uint64_t max_seq = os::JobJournal::replay(journal).max_seq;
  os::JobJournal tail(journal);
  tail.start_from(max_seq);
  tail.accepted(tiny_spec(3));  // its record is about to be torn
  tail.accepted(tiny_spec(4));
  tail.accepted(tiny_spec(5));
  ou::Rng rng(21);
  ob::inject_crash_fault(ledger, ob::CrashFaultKind::TornLedgerTail, rng);
  ob::inject_crash_fault(ledger, ob::CrashFaultKind::StaleStageFile, rng);
  ob::inject_crash_fault(journal, ob::CrashFaultKind::HalfWrittenFrame, rng);
  ASSERT_GE(stage_file_count(ledger), 1u);

  // Restart with --recover: startup must not throw on any of the
  // wreckage, must re-admit exactly the three owed jobs, and must not
  // recompute the two surviving records.
  os::ServerConfig config;
  config.ledger_path = ledger;
  config.journal_path = journal;
  config.recover = true;
  config.workers = 2;
  os::Server server(config);
  EXPECT_EQ(stage_file_count(ledger), 0u);  // stale stage swept

  // Resubmitting the full batch drains recovery: survivors and
  // recovered jobs alike must come back without extra computes.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const os::Response done =
        server.handle(submit_request(tiny_spec(seed), /*wait=*/true));
    ASSERT_TRUE(done.ok) << done.error << ": " << done.detail;
    EXPECT_EQ(done.state, "done");
    ASSERT_TRUE(done.has_record);
  }
  const oo::MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.counter("serve.recovered"), 3u);
  EXPECT_EQ(snapshot.counter("serve.ledger.torn_tail_truncated"), 1u);
  EXPECT_EQ(server.records_appended(), 3u);  // seeds 3..5; 1..2 cached
  server.shutdown(false);

  // The final ledger is strictly parseable again (tail repaired) and
  // semantically identical to the uninterrupted run.
  const std::vector<oo::LedgerRecord> final_records = oo::read_ledger(ledger);
  const std::vector<oo::LedgerRecord> ref_records =
      oo::read_ledger(reference);
  ASSERT_EQ(final_records.size(), 5u);
  const oo::CompareResult verdict =
      oo::compare_ledgers(ref_records, final_records);
  EXPECT_TRUE(verdict.semantic_ok()) << verdict.to_json();

  for (const std::string& path : {ledger, journal, reference}) {
    std::remove(path.c_str());
  }
}

TEST(ChaosRecovery, RecoveryWithoutJournalIsANoOp) {
  // --recover with no --journal: nothing to replay, nothing to throw.
  os::ServerConfig config;
  config.recover = true;
  os::Server server(config);
  const os::Response done =
      server.handle(submit_request(tiny_spec(77), /*wait=*/true));
  EXPECT_TRUE(done.ok);
  server.shutdown(false);
}

TEST(ChaosRecovery, TornTailAloneDoesNotAbortStartup) {
  // The acceptance bullet verbatim: a daemon pointed at a ledger with a
  // torn tail must start, report, and serve.
  const std::string ledger = temp_path("chaos_torn_start.jsonl");
  std::remove(ledger.c_str());
  {
    os::ServerConfig config;
    config.ledger_path = ledger;
    os::Server server(config);
    ASSERT_TRUE(
        server.handle(submit_request(tiny_spec(8), /*wait=*/true)).ok);
    server.shutdown(false);
  }
  ou::Rng rng(31);
  ob::inject_crash_fault(ledger, ob::CrashFaultKind::TornLedgerTail, rng);

  os::ServerConfig config;
  config.ledger_path = ledger;
  os::Server server(config);  // must not throw
  const os::Response done =
      server.handle(submit_request(tiny_spec(8), /*wait=*/true));
  ASSERT_TRUE(done.ok);
  EXPECT_FALSE(done.cached);  // the torn record was not servable
  server.shutdown(false);
  EXPECT_NO_THROW(oo::read_ledger(ledger));  // tail was repaired
  std::remove(ledger.c_str());
}

}  // namespace
