// Tests for the cross-run observability layer: ledger record
// round-trips, crash-safe appends, the compare regression sentinel,
// the ambient collector wired through core::run_operon, the options
// fingerprint contract, resource/pool telemetry, the heartbeat
// sampler, and session-sink absorption semantics.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace oo = operon::obs;
namespace oc = operon::core;

namespace {

/// A record with every point kind and awkward doubles, as a realistic
/// registry snapshot produces them.
oo::LedgerRecord sample_record(const std::string& case_id = "T1") {
  oo::MetricsRegistry registry;
  registry.add_counter("core.runs");
  registry.set_gauge("core.power_pj", 0.1 + 0.2);  // not exactly 0.3
  registry.set_gauge("core.tiny", 4.9406564584124654e-14);
  registry.observe("lr.norm", 0.5);
  registry.observe("lr.norm", 1234.5678901234567);
  registry.set_gauge("time.total_s", 1.25, /*timing=*/true);

  oo::LedgerRecord record;
  record.case_id = case_id;
  record.seed = 42;
  record.options = "lr-0123456789abcdef";
  record.solver = "lr";
  record.threads = 2;
  record.degraded = true;
  record.diagnostics = {{"lr-no-convergence", 1}, {"pin-off-chip", 3}};
  for (const oo::MetricPoint& point : registry.snapshot().points) {
    (point.timing ? record.timings : record.metrics).push_back(point);
  }
  return record;
}

operon::model::Design tiny_design() {
  operon::benchgen::BenchmarkSpec spec;
  spec.name = "ledger-tiny";
  spec.num_groups = 6;
  spec.bits_lo = 1;
  spec.bits_hi = 3;
  spec.seed = 7;
  return operon::benchgen::generate_benchmark(spec);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

}  // namespace

TEST(Ledger, RecordRoundTripsThroughJsonExactly) {
  const oo::LedgerRecord record = sample_record();
  const std::string line = oo::to_json_line(record);
  const oo::LedgerRecord parsed = oo::parse_ledger_record(line);
  EXPECT_TRUE(parsed == record);
  // Doubles must round-trip bit-exactly, not just approximately.
  ASSERT_EQ(parsed.metrics[1].name, "core.power_pj");
  EXPECT_EQ(parsed.metrics[1].value, 0.1 + 0.2);
  // And a second serialization is byte-stable.
  EXPECT_EQ(oo::to_json_line(parsed), line);
}

TEST(Ledger, AppendIsCrashSafeAndReadsBack) {
  const std::string path = temp_path("ledger_append.jsonl");
  std::remove(path.c_str());
  const oo::LedgerRecord first = sample_record("A");
  const oo::LedgerRecord second = sample_record("B");
  oo::append_ledger_record(path, first);
  oo::append_ledger_record(path, second);

  const std::vector<oo::LedgerRecord> records = oo::read_ledger(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0] == first);
  EXPECT_TRUE(records[1] == second);
  // The stage file is cleaned up after a successful append.
  std::ifstream stage(path + ".tmp");
  EXPECT_FALSE(stage.good());
  std::remove(path.c_str());
}

TEST(Ledger, SalvageReadSkipsGarbageAndReportsFindings) {
  const std::string path = temp_path("ledger_salvage.jsonl");
  {
    std::ofstream os(path);
    os << oo::to_json_line(sample_record("A")) << "\n";
    os << "{ not json\n";
    os << oo::to_json_line(sample_record("B")) << "\n";
    os << R"({"schema":3,"ca)";  // torn tail, no newline
  }
  const oo::LedgerSalvage salvage = oo::read_ledger_salvage(path);
  EXPECT_FALSE(salvage.missing);
  ASSERT_EQ(salvage.records.size(), 2u);
  EXPECT_EQ(salvage.records[0].case_id, "A");
  EXPECT_EQ(salvage.records[1].case_id, "B");
  EXPECT_EQ(salvage.skipped, 2u);
  ASSERT_EQ(salvage.findings.size(), 2u);
  EXPECT_NE(salvage.findings[0].find("line 2"), std::string::npos)
      << salvage.findings[0];
  // The strict reader stays the oracle: same file, hard failure.
  EXPECT_THROW(oo::read_ledger(path), operon::util::CheckError);
  std::remove(path.c_str());
}

TEST(Ledger, SalvageReadFlagsMissingFile) {
  const oo::LedgerSalvage salvage =
      oo::read_ledger_salvage(temp_path("ledger_salvage_absent.jsonl"));
  EXPECT_TRUE(salvage.missing);
  EXPECT_TRUE(salvage.records.empty());
  EXPECT_EQ(salvage.skipped, 0u);
}

TEST(Ledger, TruncateTornTailOnlyTouchesUnterminatedTails) {
  const std::string path = temp_path("ledger_torn_tail.jsonl");
  std::remove(path.c_str());
  oo::append_ledger_record(path, sample_record("A"));
  // Newline-terminated file: nothing to repair.
  EXPECT_EQ(oo::truncate_torn_ledger_tail(path), 0u);
  {
    std::ofstream os(path, std::ios::app);
    os << "{\"torn";  // crash mid-append
  }
  EXPECT_EQ(oo::truncate_torn_ledger_tail(path), 6u);
  // Strictly parseable again, and appends no longer weld onto garbage.
  EXPECT_EQ(oo::read_ledger(path).size(), 1u);
  // Missing file: no-op, not an error.
  EXPECT_EQ(
      oo::truncate_torn_ledger_tail(temp_path("ledger_torn_absent.jsonl")),
      0u);
  std::remove(path.c_str());
}

TEST(Ledger, StaleStageSweepLeavesTheLedgerAlone) {
  const std::string path = temp_path("ledger_stale_stage.jsonl");
  std::remove(path.c_str());
  oo::append_ledger_record(path, sample_record("A"));
  // Simulate two writers that died with staged lines on disk.
  {
    std::ofstream a(path + ".tmp.1234.0");
    a << "{\"half";
    std::ofstream b(path + ".tmp.5678.3");
    b << oo::to_json_line(sample_record("B")) << "\n";
  }
  EXPECT_EQ(oo::remove_stale_ledger_stages(path), 2u);
  EXPECT_EQ(oo::remove_stale_ledger_stages(path), 0u);  // idempotent
  EXPECT_EQ(oo::read_ledger(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(Ledger, MalformedLineThrowsWithLineNumber) {
  const std::string path = temp_path("ledger_malformed.jsonl");
  {
    std::ofstream os(path);
    os << oo::to_json_line(sample_record()) << "\n";
    os << "\n";  // blank lines are fine
    os << "{ not json\n";
  }
  try {
    oo::read_ledger(path);
    FAIL() << "malformed ledger line must throw";
  } catch (const operon::util::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(Ledger, MissingFileThrows) {
  EXPECT_THROW(oo::read_ledger(temp_path("no_such_ledger.jsonl")),
               operon::util::CheckError);
}

TEST(Ledger, ParserRejectsWrongSchemaAndMisplacedTimingPoints) {
  oo::LedgerRecord record = sample_record();
  record.schema = 99;
  EXPECT_THROW(oo::parse_ledger_record(oo::to_json_line(record)),
               operon::util::CheckError);

  // A timing-flagged point smuggled into the semantic array is rejected.
  record = sample_record();
  record.metrics.push_back(record.timings[0]);
  EXPECT_THROW(oo::parse_ledger_record(oo::to_json_line(record)),
               operon::util::CheckError);
}

TEST(Ledger, OlderSchemaRecordsParseWithDefaultedNewerFields) {
  // Pre-run-budget ledgers (schema 1, no trip_checkpoint key) and
  // pre-portfolio ledgers (schema 2, no winning_solver/portfolio_order
  // keys) must keep parsing, with the newer fields at their defaults.
  oo::LedgerRecord record = sample_record();
  record.trip_checkpoint = 17;
  record.winning_solver = "lr";
  record.portfolio_order = "lr,ilp-exact";
  const std::string current = oo::to_json_line(record);
  const std::string v3_schema = "\"schema\":3";
  const std::string v2_field = "\"trip_checkpoint\":17,";
  const std::string v3_fields =
      "\"winning_solver\":\"lr\",\"portfolio_order\":\"lr,ilp-exact\",";
  ASSERT_NE(current.find(v3_schema), std::string::npos);
  ASSERT_NE(current.find(v2_field), std::string::npos);
  ASSERT_NE(current.find(v3_fields), std::string::npos);

  std::string v1 = current;
  v1.replace(v1.find(v3_schema), v3_schema.size(), "\"schema\":1");
  v1.replace(v1.find(v2_field), v2_field.size(), "");
  v1.replace(v1.find(v3_fields), v3_fields.size(), "");
  const oo::LedgerRecord parsed_v1 = oo::parse_ledger_record(v1);
  EXPECT_EQ(parsed_v1.schema, 1);
  EXPECT_EQ(parsed_v1.trip_checkpoint, 0u);
  EXPECT_EQ(parsed_v1.winning_solver, "");
  EXPECT_EQ(parsed_v1.case_id, record.case_id);

  std::string v2 = current;
  v2.replace(v2.find(v3_schema), v3_schema.size(), "\"schema\":2");
  v2.replace(v2.find(v3_fields), v3_fields.size(), "");
  const oo::LedgerRecord parsed_v2 = oo::parse_ledger_record(v2);
  EXPECT_EQ(parsed_v2.schema, 2);
  EXPECT_EQ(parsed_v2.trip_checkpoint, 17u);
  EXPECT_EQ(parsed_v2.winning_solver, "");
  EXPECT_EQ(parsed_v2.portfolio_order, "");

  // Records claiming the current schema are held to it strictly: a
  // missing newer field is malformed, not defaulted.
  std::string missing_trip = current;
  missing_trip.replace(missing_trip.find(v2_field), v2_field.size(), "");
  EXPECT_THROW(oo::parse_ledger_record(missing_trip),
               operon::util::CheckError);
  std::string missing_portfolio = current;
  missing_portfolio.replace(missing_portfolio.find(v3_fields),
                            v3_fields.size(), "");
  EXPECT_THROW(oo::parse_ledger_record(missing_portfolio),
               operon::util::CheckError);
}

TEST(Compare, IdenticalLedgersAreOk) {
  const std::vector<oo::LedgerRecord> ledger = {sample_record("A"),
                                                sample_record("B")};
  const oo::CompareResult result = oo::compare_ledgers(ledger, ledger);
  EXPECT_EQ(result.matched, 2u);
  EXPECT_TRUE(result.semantic_ok());
  EXPECT_EQ(result.verdict(), "ok");
}

TEST(Compare, PerturbedSemanticMetricIsDrift) {
  const std::vector<oo::LedgerRecord> baseline = {sample_record()};
  std::vector<oo::LedgerRecord> current = {sample_record()};
  current[0].metrics[1].value += 1e-9;  // any bit difference counts

  const oo::CompareResult result = oo::compare_ledgers(baseline, current);
  EXPECT_FALSE(result.semantic_ok());
  EXPECT_EQ(result.verdict(), "semantic-drift");
  ASSERT_EQ(result.semantic.size(), 1u);
  EXPECT_NE(result.semantic[0].detail.find("core.power_pj"),
            std::string::npos);
}

TEST(Compare, DegradedFlagAndDiagnosticsAreSemantic) {
  const std::vector<oo::LedgerRecord> baseline = {sample_record()};
  std::vector<oo::LedgerRecord> current = {sample_record()};
  current[0].degraded = false;
  EXPECT_EQ(oo::compare_ledgers(baseline, current).verdict(),
            "semantic-drift");

  current = {sample_record()};
  current[0].diagnostics[0].second += 1;
  EXPECT_EQ(oo::compare_ledgers(baseline, current).verdict(),
            "semantic-drift");

  // The run-budget trip checkpoint is semantic too: a run that tripped
  // at a different checkpoint did not take the same path.
  current = {sample_record()};
  current[0].trip_checkpoint = 5;
  EXPECT_FALSE(oo::semantic_equal(baseline[0], current[0]));
  EXPECT_EQ(oo::compare_ledgers(baseline, current).verdict(),
            "semantic-drift");
}

TEST(Compare, TimingRegressionIsReportOnly) {
  const std::vector<oo::LedgerRecord> baseline = {sample_record()};
  std::vector<oo::LedgerRecord> current = {sample_record()};
  ASSERT_EQ(current[0].timings[0].name, "time.total_s");
  current[0].timings[0].value *= 2.0;  // past the default 1.5x threshold

  const oo::CompareResult result = oo::compare_ledgers(baseline, current);
  EXPECT_TRUE(result.semantic_ok());  // timing never gates semantic_ok
  EXPECT_EQ(result.verdict(), "timing-regression");
  ASSERT_EQ(result.timing.size(), 1u);
  EXPECT_NE(result.timing[0].detail.find("time.total_s"), std::string::npos);

  // Below the noise floor nothing is reported.
  oo::CompareOptions lax;
  lax.timing_min = 1e9;
  EXPECT_EQ(oo::compare_ledgers(baseline, current, lax).verdict(), "ok");
}

TEST(Compare, UnmatchedKeysAreDrift) {
  const std::vector<oo::LedgerRecord> baseline = {sample_record("A"),
                                                  sample_record("B")};
  const std::vector<oo::LedgerRecord> current = {sample_record("B"),
                                                 sample_record("C")};
  const oo::CompareResult result = oo::compare_ledgers(baseline, current);
  EXPECT_EQ(result.matched, 1u);
  ASSERT_EQ(result.only_baseline.size(), 1u);
  ASSERT_EQ(result.only_current.size(), 1u);
  EXPECT_FALSE(result.semantic_ok());
  EXPECT_EQ(result.verdict(), "semantic-drift");
}

TEST(Compare, VerdictJsonParses) {
  const std::vector<oo::LedgerRecord> baseline = {sample_record()};
  std::vector<oo::LedgerRecord> current = {sample_record()};
  current[0].metrics[0].count += 1;
  const oo::CompareResult result = oo::compare_ledgers(baseline, current);
  const operon::util::JsonValue doc =
      operon::util::parse_json(result.to_json());
  EXPECT_EQ(doc.at("verdict").as_string(), "semantic-drift");
  EXPECT_EQ(doc.at("matched").as_number(), 1.0);
  EXPECT_EQ(doc.at("semantic").items().size(), 1u);
}

TEST(Ledger, CollectorCapturesRunsEndToEnd) {
  const operon::model::Design design = tiny_design();
  oc::OperonOptions options;  // LR defaults

  oo::LedgerCollector collector;
  {
    const oo::ScopedLedger scope(collector);
    oo::set_ledger_context("tiny-case", 7);
    (void)oc::run_operon(design, options);
    // Context is sticky: a second run reuses it.
    (void)oc::run_operon(design, options);
  }
  const std::vector<oo::LedgerRecord> records = collector.records();
  ASSERT_EQ(records.size(), 2u);
  for (const oo::LedgerRecord& record : records) {
    EXPECT_EQ(record.schema, oo::kLedgerSchemaVersion);
    EXPECT_EQ(record.case_id, "tiny-case");
    EXPECT_EQ(record.seed, 7u);
    EXPECT_EQ(record.solver, "lr");
    EXPECT_EQ(record.threads, 1u);
    EXPECT_EQ(record.git, oo::git_describe());
    EXPECT_EQ(record.options, oc::options_fingerprint(options));
    EXPECT_FALSE(record.metrics.empty());
    EXPECT_FALSE(record.timings.empty());
    for (const oo::MetricPoint& point : record.metrics) {
      EXPECT_FALSE(point.timing) << point.name;
    }
    for (const oo::MetricPoint& point : record.timings) {
      EXPECT_TRUE(point.timing) << point.name;
    }
    // The driver publishes resource telemetry alongside wall-clock.
    bool has_total = false, has_rss = false;
    for (const oo::MetricPoint& point : record.timings) {
      has_total = has_total || point.name == "time.total_s";
      has_rss = has_rss || point.name == "resource.peak_rss_mb";
    }
    EXPECT_TRUE(has_total);
    EXPECT_TRUE(has_rss);
  }
  // Two identical runs produce semantically identical records.
  EXPECT_TRUE(oo::semantic_equal(records[0], records[1]));

  // Without a collector nothing is recorded and nothing crashes.
  EXPECT_EQ(oo::current_ledger(), nullptr);
  (void)oc::run_operon(design, options);
}

TEST(Ledger, FallsBackToDesignNameWithoutContext) {
  oo::LedgerCollector collector;
  {
    const oo::ScopedLedger scope(collector);
    (void)oc::run_operon(tiny_design(), {});
  }
  const std::vector<oo::LedgerRecord> records = collector.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].case_id, "ledger-tiny");
  EXPECT_EQ(records[0].seed, 0u);
}

TEST(Ledger, FingerprintIgnoresThreadsButTracksSemantics) {
  oc::OperonOptions base;
  const std::string fingerprint = oc::options_fingerprint(base);

  oc::OperonOptions threaded = base;
  threaded.threads = 8;
  threaded.generation.threads = 4;  // per-stage knobs are excluded too
  threaded.lr.threads = 4;
  threaded.select.threads = 4;
  EXPECT_EQ(oc::options_fingerprint(threaded), fingerprint);

  oc::OperonOptions looser = base;
  looser.params.optical.max_loss_db = 18.0;
  EXPECT_NE(oc::options_fingerprint(looser), fingerprint);

  oc::OperonOptions exact = base;
  exact.solver = oc::SolverKind::IlpExact;
  const std::string exact_fp = oc::options_fingerprint(exact);
  EXPECT_NE(exact_fp, fingerprint);
  EXPECT_EQ(exact_fp.rfind("ilp-exact-", 0), 0u);
  EXPECT_EQ(fingerprint.rfind("lr-", 0), 0u);

  oc::OperonOptions no_wdm = base;
  no_wdm.run_wdm_stage = false;
  EXPECT_NE(oc::options_fingerprint(no_wdm), fingerprint);
}

TEST(Resource, SampleAndPublishAreSane) {
  const oo::ResourceUsage usage = oo::sample_resource_usage();
  EXPECT_GT(usage.peak_rss_mb, 0.0);
  EXPECT_GE(usage.user_cpu_s, 0.0);
  EXPECT_GE(usage.sys_cpu_s, 0.0);

  oo::Observation observation;
  {
    const oo::ScopedObservation scope(observation);
    oo::publish_resource_gauges();
  }
  const oo::MetricsSnapshot snap = observation.metrics.snapshot();
  for (const char* name :
       {"resource.peak_rss_mb", "resource.user_cpu_s", "resource.sys_cpu_s",
        "pool.pools", "pool.workers_spawned", "pool.jobs", "pool.inline_runs",
        "pool.indices"}) {
    const oo::MetricPoint* point = snap.find(name);
    ASSERT_NE(point, nullptr) << name;
    EXPECT_TRUE(point->timing) << name;  // telemetry is never semantic
  }
  EXPECT_GT(snap.gauge("resource.peak_rss_mb"), 0.0);
}

TEST(Resource, HeartbeatEmitsCounterEventsIntoTrace) {
  oo::Observation observation;
  {
    const oo::ScopedObservation scope(observation);
    oo::add_counter("test.alive", 3);
    oo::Heartbeat heartbeat(std::chrono::milliseconds(5));
    // The first sample fires immediately; wait for at least one more.
    while (heartbeat.samples() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::size_t resource_events = 0, metric_events = 0;
  for (const oo::TraceEvent& event : observation.trace.events()) {
    if (event.phase != 'C') continue;
    EXPECT_EQ(event.category, "heartbeat");
    EXPECT_FALSE(event.args.empty());
    if (event.name == "hb.resource") ++resource_events;
    if (event.name == "hb.metrics") ++metric_events;
  }
  EXPECT_GE(resource_events, 2u);
  EXPECT_GE(metric_events, 2u);

  // Heartbeats outside any observation are a safe no-op.
  {
    oo::Heartbeat idle(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// The session-sink contract the CLI/bench front ends rely on: absorbing
// N per-run observations into one session registry gives exactly the
// same snapshot as manually merging the N run snapshots — counters add,
// gauges take the last write, histogram buckets merge — including the
// degenerate zero- and single-run sessions.
TEST(Sink, SessionAbsorptionMatchesManualMerges) {
  const operon::model::Design design = tiny_design();
  const oc::OperonOptions options;

  for (const std::size_t runs : {0u, 1u, 3u}) {
    oo::Observation session;
    oo::MetricsRegistry manual;
    {
      const oo::ScopedObservation scope(session);
      for (std::size_t i = 0; i < runs; ++i) {
        const oc::OperonResult result = oc::run_operon(design, options);
        manual.absorb(result.stats.metrics);
      }
    }
    const oo::MetricsSnapshot absorbed = session.metrics.snapshot();
    const oo::MetricsSnapshot merged = manual.snapshot();
    ASSERT_EQ(absorbed.points.size(), merged.points.size()) << runs;
    for (std::size_t i = 0; i < absorbed.points.size(); ++i) {
      EXPECT_TRUE(absorbed.points[i] == merged.points[i])
          << "runs=" << runs << " point=" << absorbed.points[i].name;
    }
    if (runs > 0) {
      EXPECT_EQ(absorbed.counter("core.runs"), runs);
    } else {
      EXPECT_TRUE(absorbed.points.empty());
    }
  }
}
