// Serve determinism contract: for a fixed job set, the SEMANTIC ledger
// record set is bit-identical regardless of submission order, executor
// count, scheduling interleaving, or per-job thread count — verified
// with the same compare_ledgers sentinel that gates CI. Also covers the
// warm-resubmission contract (a second identical batch recomputes
// nothing) and the deterministic cancel replay (a mid-run cancel's trip
// checkpoint, replayed via stop_at_checkpoint, reproduces the record
// bit-identically).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/ledger.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/stop.hpp"

namespace os = operon::serve;
namespace oo = operon::obs;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

os::JobSpec job(std::uint64_t seed, std::size_t groups,
                const std::string& tenant, int priority) {
  os::JobSpec spec;
  spec.groups = groups;
  spec.bits_lo = 2;
  spec.bits_hi = 4;
  spec.seed = seed;
  spec.tenant = tenant;
  spec.priority = priority;
  spec.ilp_limit_s = 5.0;
  return spec;
}

/// A mixed batch: several tenants, priorities, a duplicate spec (must
/// deduplicate to ONE record), and one deterministic early-stop replay
/// job (cacheable trip).
std::vector<os::JobSpec> batch() {
  std::vector<os::JobSpec> jobs;
  jobs.push_back(job(1, 4, "alpha", 0));
  jobs.push_back(job(2, 4, "alpha", 2));
  jobs.push_back(job(3, 5, "beta", 0));
  jobs.push_back(job(4, 3, "beta", 1));
  jobs.push_back(job(1, 4, "gamma", 5));  // duplicate of jobs[0]
  os::JobSpec replay = job(5, 4, "alpha", 0);
  replay.stop_at_checkpoint = 3;
  jobs.push_back(replay);
  return jobs;
}

/// Submit every spec (in the given order), wait for all, shut down.
void run_batch(const std::string& ledger_path,
               const std::vector<os::JobSpec>& jobs, std::size_t workers,
               std::size_t job_threads) {
  os::ServerConfig config;
  config.ledger_path = ledger_path;
  config.workers = workers;
  config.job_threads = job_threads;
  os::Server server(config);
  std::vector<std::uint64_t> ids;
  for (const os::JobSpec& spec : jobs) {
    os::Request request;
    request.op = os::Op::Submit;
    request.spec = spec;
    const os::Response response = server.handle(request);
    ASSERT_TRUE(response.ok) << response.error << ": " << response.detail;
    ids.push_back(response.job);
  }
  for (const std::uint64_t id : ids) {
    os::Request request;
    request.op = os::Op::Result;
    request.job = id;
    request.wait = true;
    const os::Response response = server.handle(request);
    ASSERT_TRUE(response.ok) << response.error << ": " << response.detail;
    EXPECT_EQ(response.state, "done");
  }
  server.shutdown(/*cancel_running=*/false);
}

TEST(ServeDeterminism, RecordSetInvariantAcrossOrderWorkersAndThreads) {
  const std::string baseline_path = temp_path("serve_det_baseline.jsonl");
  const std::string shuffled_path = temp_path("serve_det_shuffled.jsonl");
  std::remove(baseline_path.c_str());
  std::remove(shuffled_path.c_str());

  // Baseline: submission order, one executor, one thread per job.
  run_batch(baseline_path, batch(), /*workers=*/1, /*job_threads=*/1);

  // Current: reversed submission order, parallel executors, all-core
  // jobs — maximally different interleaving.
  std::vector<os::JobSpec> reversed = batch();
  std::reverse(reversed.begin(), reversed.end());
  run_batch(shuffled_path, reversed, /*workers=*/4, /*job_threads=*/0);

  const std::vector<oo::LedgerRecord> baseline =
      oo::read_ledger(baseline_path);
  const std::vector<oo::LedgerRecord> current =
      oo::read_ledger(shuffled_path);
  // The duplicate spec deduplicates: 6 submissions, 5 records.
  EXPECT_EQ(baseline.size(), 5u);
  EXPECT_EQ(current.size(), 5u);

  const oo::CompareResult verdict = oo::compare_ledgers(baseline, current);
  EXPECT_TRUE(verdict.semantic_ok()) << verdict.to_json();
  EXPECT_EQ(verdict.matched, 5u);

  std::remove(baseline_path.c_str());
  std::remove(shuffled_path.c_str());
}

TEST(ServeDeterminism, WarmResubmissionRecomputesNothing) {
  const std::string path = temp_path("serve_det_warm.jsonl");
  std::remove(path.c_str());
  run_batch(path, batch(), /*workers=*/2, /*job_threads=*/1);
  const std::size_t cold_records = oo::read_ledger(path).size();
  ASSERT_EQ(cold_records, 5u);

  // Second pass over the same ledger: every submit must be a cache hit
  // — including the stop_at_checkpoint replay job (deterministic trip,
  // cacheable) — and the ledger must not grow.
  os::ServerConfig config;
  config.ledger_path = path;
  config.workers = 2;
  os::Server server(config);
  const std::vector<os::JobSpec> jobs = batch();
  for (const os::JobSpec& spec : jobs) {
    os::Request request;
    request.op = os::Op::Submit;
    request.spec = spec;
    request.wait = true;
    const os::Response response = server.handle(request);
    ASSERT_TRUE(response.ok) << response.error << ": " << response.detail;
    EXPECT_TRUE(response.cached) << "seed " << spec.seed << " recomputed";
  }
  EXPECT_EQ(server.records_appended(), 0u);
  const oo::MetricsSnapshot snapshot = server.metrics();
  EXPECT_EQ(snapshot.counter("serve.cache.hit"), jobs.size());
  EXPECT_EQ(snapshot.find("serve.cache.miss"), nullptr)
      << "warm pass recorded a cache miss";
  server.shutdown(false);
  EXPECT_EQ(oo::read_ledger(path).size(), cold_records);
  std::remove(path.c_str());
}

TEST(ServeDeterminism, CancelReplayReproducesTheInterruptedRecord) {
  // Interrupt a job deterministically (a pre-requested session stop —
  // the daemon's SIGINT path — trips at checkpoint 1), read the trip
  // checkpoint from its record, then replay that checkpoint via
  // stop_at_checkpoint on servers with different thread counts: the
  // replays must agree with each other bit-identically and reproduce
  // the interrupted run's semantics (the TimeLimit/Interrupt/
  // DebugCheckpoint equivalence, through the whole serve stack).
  os::JobSpec slow = job(7, 40, "alpha", 0);
  slow.bits_hi = 7;

  oo::LedgerRecord interrupted;
  {
    operon::util::StopSource session;
    session.request_stop();
    os::ServerConfig config;
    config.workers = 1;
    config.session_stop = session.token();
    os::Server server(config);
    os::Request submit;
    submit.op = os::Op::Submit;
    submit.spec = slow;
    submit.wait = true;
    const os::Response response = server.handle(submit);
    ASSERT_TRUE(response.ok);
    EXPECT_EQ(response.state, "canceled");
    ASSERT_TRUE(response.has_record);
    interrupted = response.record;
    server.shutdown(true);
  }
  ASSERT_EQ(interrupted.trip_checkpoint, 1u);
  ASSERT_TRUE(interrupted.degraded);

  os::JobSpec replay = slow;
  replay.stop_at_checkpoint = interrupted.trip_checkpoint;
  oo::LedgerRecord replayed[2];
  const std::size_t thread_counts[2] = {1, 0};
  for (int i = 0; i < 2; ++i) {
    os::ServerConfig config;
    config.workers = 1;
    config.job_threads = thread_counts[i];
    os::Server server(config);
    os::Request submit;
    submit.op = os::Op::Submit;
    submit.spec = replay;
    submit.wait = true;
    const os::Response response = server.handle(submit);
    ASSERT_TRUE(response.ok);
    ASSERT_TRUE(response.has_record);
    replayed[i] = response.record;
    server.shutdown(false);
  }
  // Replays agree with each other bit-identically at any thread
  // count...
  EXPECT_TRUE(oo::semantic_equal(replayed[0], replayed[1]));
  // ...and reproduce the interrupted run's semantics. The identity keys
  // differ by construction (stop_at_checkpoint is fingerprinted), so
  // compare the outcome fields directly.
  EXPECT_EQ(replayed[0].trip_checkpoint, interrupted.trip_checkpoint);
  EXPECT_EQ(replayed[0].degraded, interrupted.degraded);
  EXPECT_EQ(replayed[0].metrics.size(), interrupted.metrics.size());
}

}  // namespace
