// Tests for §3.1 signal processing: capacitated K-Means invariants,
// bottom-up hyper-pin agglomeration, and hyper-net construction on a
// whole design. Includes parameterized property sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/agglomerate.hpp"
#include "cluster/hypernet_builder.hpp"
#include "cluster/kmeans.hpp"
#include "util/rng.hpp"

namespace oc = operon::cluster;
namespace om = operon::model;
namespace og = operon::geom;

namespace {

std::vector<og::Point> random_points(std::uint64_t seed, std::size_t n,
                                     double extent) {
  operon::util::Rng rng(seed);
  std::vector<og::Point> pts(n);
  for (auto& p : pts) p = {rng.uniform(0, extent), rng.uniform(0, extent)};
  return pts;
}

}  // namespace

TEST(KMeans, EmptyInput) {
  const auto result = oc::capacitated_kmeans({}, {});
  EXPECT_EQ(result.num_clusters(), 0u);
  EXPECT_TRUE(result.assignment.empty());
}

TEST(KMeans, SingleClusterWhenUnderCapacity) {
  const auto pts = random_points(1, 10, 100.0);
  oc::KMeansOptions options;
  options.capacity = 32;
  const auto result = oc::capacitated_kmeans(pts, options);
  EXPECT_EQ(result.num_clusters(), 1u);
  for (std::size_t c : result.assignment) EXPECT_EQ(c, 0u);
}

TEST(KMeans, SeparatedBlobsFound) {
  // Two well-separated blobs of 20 points with capacity 20 must split
  // cleanly: every cluster is spatially pure.
  operon::util::Rng rng(5);
  std::vector<og::Point> pts;
  for (int i = 0; i < 20; ++i)
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  for (int i = 0; i < 20; ++i)
    pts.push_back({rng.uniform(1000, 1010), rng.uniform(1000, 1010)});
  oc::KMeansOptions options;
  options.capacity = 20;
  const auto result = oc::capacitated_kmeans(pts, options);
  EXPECT_EQ(result.num_clusters(), 2u);
  // All left-blob points share a cluster, all right-blob points the other.
  const std::size_t left = result.assignment[0];
  for (int i = 0; i < 20; ++i) EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)], left);
  const std::size_t right = result.assignment[20];
  EXPECT_NE(left, right);
  for (int i = 20; i < 40; ++i) EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)], right);
}

TEST(KMeans, DeterministicForSeed) {
  const auto pts = random_points(9, 100, 5000.0);
  oc::KMeansOptions options;
  options.capacity = 16;
  options.seed = 777;
  const auto a = oc::capacitated_kmeans(pts, options);
  const auto b = oc::capacitated_kmeans(pts, options);
  EXPECT_EQ(a.assignment, b.assignment);
}

struct KMeansSweep {
  std::size_t n;
  std::size_t capacity;
  std::uint64_t seed;
};

class KMeansProperty : public ::testing::TestWithParam<KMeansSweep> {};

TEST_P(KMeansProperty, CapacityAndCoverageInvariants) {
  const KMeansSweep sweep = GetParam();
  const auto pts = random_points(sweep.seed, sweep.n, 10000.0);
  oc::KMeansOptions options;
  options.capacity = sweep.capacity;
  options.seed = sweep.seed;
  const auto result = oc::capacitated_kmeans(pts, options);

  // Every point assigned to a real cluster.
  ASSERT_EQ(result.assignment.size(), sweep.n);
  for (std::size_t c : result.assignment) ASSERT_LT(c, result.num_clusters());

  // Capacity respected, no empty clusters, enough clusters for all bits.
  const auto sizes = result.cluster_sizes();
  for (std::size_t s : sizes) {
    EXPECT_LE(s, sweep.capacity);
    EXPECT_GE(s, 1u);
  }
  const std::size_t min_clusters =
      (sweep.n + sweep.capacity - 1) / sweep.capacity;
  EXPECT_GE(result.num_clusters(), min_clusters);
  EXPECT_GE(result.iterations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KMeansProperty,
    ::testing::Values(KMeansSweep{1, 4, 2}, KMeansSweep{4, 4, 3},
                      KMeansSweep{5, 4, 4}, KMeansSweep{33, 32, 5},
                      KMeansSweep{64, 32, 6}, KMeansSweep{100, 7, 7},
                      KMeansSweep{200, 32, 8}, KMeansSweep{257, 32, 9},
                      KMeansSweep{50, 1, 10}));

TEST(Agglomerate, MergesWithinThreshold) {
  std::vector<om::PinRef> pins;
  pins.push_back({0, 0, -1, {0, 0}, om::PinRole::Source});
  pins.push_back({0, 0, 0, {1, 0}, om::PinRole::Sink});
  pins.push_back({0, 1, 0, {100, 100}, om::PinRole::Sink});
  const auto clusters = oc::agglomerate_pins(pins, 10.0);
  ASSERT_EQ(clusters.size(), 2u);
  // The two nearby pins share a hyper pin with gravity center (0.5, 0).
  const auto& merged = clusters[0].pins.size() == 2 ? clusters[0] : clusters[1];
  EXPECT_EQ(merged.pins.size(), 2u);
  EXPECT_NEAR(merged.center.x, 0.5, 1e-12);
}

TEST(Agglomerate, ZeroThresholdKeepsAllSeparate) {
  std::vector<om::PinRef> pins;
  for (int i = 0; i < 5; ++i)
    pins.push_back({0, 0, i, {static_cast<double>(i), 0}, om::PinRole::Sink});
  EXPECT_EQ(oc::agglomerate_pins(pins, 0.0).size(), 5u);
}

TEST(Agglomerate, HugeThresholdMergesAll) {
  std::vector<om::PinRef> pins;
  for (int i = 0; i < 5; ++i)
    pins.push_back({0, 0, i, {static_cast<double>(i * 100), 0}, om::PinRole::Sink});
  const auto clusters = oc::agglomerate_pins(pins, 1e9);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].pins.size(), 5u);
  EXPECT_NEAR(clusters[0].center.x, 200.0, 1e-12);
}

TEST(Agglomerate, PreservesPinCount) {
  operon::util::Rng rng(12);
  std::vector<om::PinRef> pins;
  for (int i = 0; i < 40; ++i) {
    pins.push_back({0, static_cast<std::size_t>(i), 0,
                    {rng.uniform(0, 1000), rng.uniform(0, 1000)},
                    om::PinRole::Sink});
  }
  const auto clusters = oc::agglomerate_pins(pins, 150.0);
  std::size_t total = 0;
  for (const auto& hp : clusters) total += hp.pins.size();
  EXPECT_EQ(total, 40u);
}

namespace {

om::Design two_block_design(std::size_t bits_per_group, std::size_t groups) {
  operon::util::Rng rng(2026);
  om::Design design;
  design.name = "twoblock";
  design.chip = og::BBox::of({0, 0}, {20000, 20000});
  for (std::size_t g = 0; g < groups; ++g) {
    om::SignalGroup group;
    group.name = "g" + std::to_string(g);
    const og::Point src_base{rng.uniform(500, 3000), rng.uniform(500, 3000)};
    const og::Point dst_base{rng.uniform(15000, 19000), rng.uniform(15000, 19000)};
    for (std::size_t b = 0; b < bits_per_group; ++b) {
      om::SignalBit bit;
      bit.source = {{src_base.x + rng.uniform(0, 200), src_base.y + rng.uniform(0, 200)},
                    om::PinRole::Source};
      bit.sinks.push_back({{dst_base.x + rng.uniform(0, 200),
                            dst_base.y + rng.uniform(0, 200)},
                           om::PinRole::Sink});
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  }
  return design;
}

}  // namespace

TEST(HyperNetBuilder, CoversEveryBitExactlyOnce) {
  const om::Design design = two_block_design(70, 3);
  oc::SignalProcessingOptions options;
  options.kmeans.capacity = 32;
  const auto result = oc::build_hyper_nets(design, options);

  // 70 bits with capacity 32 -> at least 3 hyper nets per group.
  EXPECT_GE(result.num_hyper_nets(), 9u);
  std::set<std::pair<std::size_t, std::size_t>> covered;
  for (const auto& net : result.hyper_nets) {
    net.validate(design);
    for (std::size_t bit : net.bits) {
      EXPECT_TRUE(covered.insert({net.group, bit}).second)
          << "bit covered twice";
    }
    EXPECT_LE(net.bit_count(), 32u);
  }
  EXPECT_EQ(covered.size(), design.num_bits());
}

TEST(HyperNetBuilder, HyperPinsCompressPins) {
  const om::Design design = two_block_design(32, 1);
  oc::SignalProcessingOptions options;
  options.kmeans.capacity = 32;
  options.pin_merge_threshold_um = 600.0;
  const auto result = oc::build_hyper_nets(design, options);
  ASSERT_EQ(result.num_hyper_nets(), 1u);
  const auto& net = result.hyper_nets[0];
  // 64 electrical pins collapse into very few hyper pins (tight blocks).
  EXPECT_LE(net.pins.size(), 4u);
  EXPECT_GE(net.pins.size(), 2u);
  EXPECT_TRUE(net.pins[net.root].has_source());
}

TEST(HyperNetBuilder, TinyThresholdKeepsPinsApart) {
  const om::Design design = two_block_design(8, 1);
  oc::SignalProcessingOptions options;
  options.kmeans.capacity = 32;
  options.pin_merge_threshold_um = 0.0;
  const auto result = oc::build_hyper_nets(design, options);
  ASSERT_EQ(result.num_hyper_nets(), 1u);
  // Every pin its own hyper pin: 8 sources + 8 sinks.
  EXPECT_EQ(result.hyper_nets[0].pins.size(), 16u);
  EXPECT_EQ(result.num_hyper_pins(), 16u);
}
