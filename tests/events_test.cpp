// Structured event log (obs/events.hpp): per-source sequencing, the
// bounded flight-recorder ring, the strict JSON schema, the OPERON_LOG
// bridge, the semantic projection the determinism gates compare, and
// the run-level event-stream invariance across thread counts. Also
// covers the Prometheus text exposition (obs::to_prometheus), which
// ships over the same serve stats surface.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace ob = operon::obs;
namespace ou = operon::util;

namespace {

ob::EventContext context(const std::string& source, std::uint64_t job) {
  ob::EventContext ctx;
  ctx.source = source;
  ctx.job = job;
  ctx.case_id = "I1";
  ctx.seed = 7;
  ctx.tenant = "alpha";
  return ctx;
}

TEST(EventLog, PerSourceSequencesAreIndependentAndMonotonic) {
  ob::EventLog log;
  log.emit(ou::LogLevel::Info, "a", "", context("x", 1));
  log.emit(ou::LogLevel::Info, "b", "", context("y", 2));
  log.emit(ou::LogLevel::Info, "c", "", context("x", 1));
  log.emit(ou::LogLevel::Info, "d", "", {});  // process stream
  const std::vector<ob::Event> events = log.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].seq, 1u);  // x: 1
  EXPECT_EQ(events[1].seq, 1u);  // y: 1
  EXPECT_EQ(events[2].seq, 2u);  // x: 2
  EXPECT_EQ(events[3].seq, 1u);  // "": 1
  EXPECT_EQ(log.total(), 4u);
}

TEST(EventLog, BoundedRingKeepsNewestButCountsAll) {
  ob::EventLog log(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.emit(ou::LogLevel::Info, "e" + std::to_string(i), "", {});
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total(), 5u);
  const std::vector<ob::Event> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().name, "e2");
  EXPECT_EQ(events.back().name, "e4");
  // tail narrows further within the ring.
  EXPECT_EQ(log.events(1).front().name, "e4");
}

TEST(EventLog, SinkSeesEveryEventDespiteTheRing) {
  ob::EventLog log(/*capacity=*/2);
  std::vector<std::string> seen;
  log.set_sink([&seen](const ob::Event& event) { seen.push_back(event.name); });
  for (int i = 0; i < 4; ++i) {
    log.emit(ou::LogLevel::Info, "e" + std::to_string(i), "", {});
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"e0", "e1", "e2", "e3"}));
  EXPECT_EQ(log.size(), 2u);
}

TEST(EventLog, JsonLineRoundTripsAndParsesStrictly) {
  ob::EventLog log;
  log.emit(ou::LogLevel::Warn, "serve.job.canceled", "canceled at shutdown",
           context("I1/7/lr-abc", 3));
  const ob::Event original = log.events().front();
  const ob::Event parsed =
      ob::event_from_json(ou::parse_json(ob::to_json_line(original)));
  EXPECT_EQ(parsed.seq, original.seq);
  EXPECT_EQ(parsed.ts_us, original.ts_us);
  EXPECT_EQ(parsed.level, original.level);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.message, original.message);
  EXPECT_EQ(parsed.context.source, original.context.source);
  EXPECT_EQ(parsed.context.job, original.context.job);
  EXPECT_EQ(parsed.context.case_id, original.context.case_id);
  EXPECT_EQ(parsed.context.seed, original.context.seed);
  EXPECT_EQ(parsed.context.tenant, original.context.tenant);

  // Strict whitelist: unknown members, missing requireds, bad levels.
  EXPECT_THROW(ob::event_from_json(ou::parse_json(
                   R"({"seq":1,"level":"info","name":"a","bogus":1})")),
               ou::CheckError);
  EXPECT_THROW(
      ob::event_from_json(ou::parse_json(R"({"level":"info","name":"a"})")),
      ou::CheckError);
  EXPECT_THROW(ob::event_from_json(ou::parse_json(
                   R"({"seq":1,"level":"loud","name":"a"})")),
               ou::CheckError);
  EXPECT_THROW(ob::event_from_json(ou::parse_json(R"([1,2])")),
               ou::CheckError);
}

TEST(EventLog, SemanticLineExcludesWallTimeAndJobId) {
  ob::EventLog a;
  ob::EventLog b;
  a.emit(ou::LogLevel::Info, "serve.job.started", "", context("k", 1));
  b.emit(ou::LogLevel::Info, "serve.job.started", "", context("k", 9));
  const ob::Event ea = a.events().front();
  const ob::Event eb = b.events().front();
  ASSERT_NE(ea.context.job, eb.context.job);
  EXPECT_EQ(ob::semantic_line(ea), ob::semantic_line(eb));
  // ...but everything semantic is kept.
  ob::Event changed = ea;
  changed.message = "different";
  EXPECT_NE(ob::semantic_line(ea), ob::semantic_line(changed));
}

TEST(EventLog, LogBridgeTurnsOperonLogIntoEvents) {
  ob::EventLog log;
  const ob::ScopedEventLog scope(log);
  const ob::ScopedEventContext ctx(context("bridge-src", 4));
  OPERON_LOG(Warn) << "widget " << 42 << " failed";
  const std::vector<ob::Event> events = log.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "log.warn");
  EXPECT_EQ(events[0].level, ou::LogLevel::Warn);
  // Body only: no [LEVEL file:line] prefix leaks into the event.
  EXPECT_EQ(events[0].message, "widget 42 failed");
  EXPECT_EQ(events[0].context.source, "bridge-src");
  EXPECT_EQ(events[0].context.tenant, "alpha");
}

TEST(EventLog, EmitEventWithoutALogIsANoOp) {
  // No ambient log installed here: must not crash, must not leak state.
  ob::emit_event(ou::LogLevel::Info, "nobody.listens", "fine");
  SUCCEED();
}

TEST(FlightRecorder, DumpIsByteStableForAFixedEmissionSequence) {
  ob::EventLog log(/*capacity=*/8);
  log.emit(ou::LogLevel::Info, "serve.job.submitted", "",
           context("I1/7/lr-abc", 1));
  log.emit(ou::LogLevel::Info, "serve.job.started", "",
           context("I1/7/lr-abc", 1));
  log.emit(ou::LogLevel::Warn, "serve.job.canceled", "canceled while queued",
           context("I2/9/lr-def", 2));
  log.emit(ou::LogLevel::Info, "log.info", "listening", {});
  // render_event carries no wall-time, so the dump is a golden string.
  EXPECT_EQ(log.dump(),
            "#1 info serve.job.submitted [I1/7/lr-abc] case=I1 seed=7 "
            "tenant=alpha\n"
            "#2 info serve.job.started [I1/7/lr-abc] case=I1 seed=7 "
            "tenant=alpha\n"
            "#1 warn serve.job.canceled [I2/9/lr-def] case=I1 seed=7 "
            "tenant=alpha: canceled while queued\n"
            "#1 info log.info: listening\n");
  // tail slices the newest.
  EXPECT_EQ(log.dump(1), "#1 info log.info: listening\n");

  const std::string dump = ob::flight_recorder_dump(log, 2);
  EXPECT_NE(dump.find("recent events:\n"), std::string::npos);
  EXPECT_NE(dump.find("open spans:\n"), std::string::npos);
  EXPECT_EQ(dump.find("serve.job.submitted"), std::string::npos);  // tailed off
  EXPECT_NE(dump.find("serve.job.canceled"), std::string::npos);

  ob::EventLog empty;
  EXPECT_EQ(empty.dump(), "(no events)\n");
}

/// Collect the semantic event stream of one run_operon invocation at a
/// given thread count.
std::vector<std::string> run_event_stream(std::size_t threads) {
  operon::benchgen::BenchmarkSpec spec;
  spec.name = "events-det";
  spec.num_groups = 4;
  spec.bits_lo = 2;
  spec.bits_hi = 4;
  spec.seed = 11;
  const operon::model::Design design =
      operon::benchgen::generate_benchmark(spec);
  operon::core::OperonOptions options;
  options.threads = threads;
  options.select.time_limit_s = 5.0;

  ob::EventLog log;
  std::vector<std::string> lines;
  {
    const ob::ScopedEventLog scope(log);
    (void)operon::core::run_operon(design, options);
  }
  for (const ob::Event& event : log.events()) {
    lines.push_back(ob::semantic_line(event));
  }
  return lines;
}

TEST(EventDeterminism, RunEventStreamIdenticalAcrossThreadCounts) {
  const std::vector<std::string> serial = run_event_stream(1);
  // The stream is non-trivial: the run start/completed pair plus any
  // bridged OPERON_LOG lines, in emission order.
  ASSERT_GE(serial.size(), 2u);
  EXPECT_NE(serial.front().find("name=core.run.start"), std::string::npos)
      << serial.front();
  EXPECT_NE(serial.back().find("name=core.run.completed"), std::string::npos)
      << serial.back();
  EXPECT_EQ(run_event_stream(2), serial);
  EXPECT_EQ(run_event_stream(0), serial);
}

TEST(EventDeterminism, PrometheusExpositionRendersEveryKind) {
  ob::MetricsRegistry registry;
  registry.add_counter("serve.submitted", 3);
  registry.set_gauge("serve.queue.depth", 2.0);
  registry.set_gauge("time.total_s", 1.5, /*timing=*/true);
  registry.observe("serve.job.time.total_s", 0.25);
  registry.observe("serve.job.time.total_s", 0.75);
  const std::string text = registry.to_prometheus();

  EXPECT_NE(text.find("# TYPE operon_serve_submitted counter\n"
                      "operon_serve_submitted 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("operon_serve_queue_depth 2\n"), std::string::npos);
  // Timing gauges ARE exposed: exposition is a monitoring surface.
  EXPECT_NE(text.find("operon_time_total_s 1.5\n"), std::string::npos);
  // Histograms expand to cumulative buckets + sum/count with +Inf.
  EXPECT_NE(text.find("# TYPE operon_serve_job_time_total_s histogram"),
            std::string::npos);
  EXPECT_NE(text.find("operon_serve_job_time_total_s_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("operon_serve_job_time_total_s_sum 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("operon_serve_job_time_total_s_count 2\n"),
            std::string::npos);
}

}  // namespace
