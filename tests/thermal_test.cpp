// Tests for the thermal extension: temperature-field construction
// (diffusion, peak location), ring tuning-energy accounting, and the
// headline coupling — a cooler electrical layer (OPERON) pays less ring
// tuning power than a hotter one (GLOW with electrical fallbacks).

#include <gtest/gtest.h>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "thermal/thermal.hpp"

namespace oth = operon::thermal;
namespace ocore = operon::core;
namespace og = operon::geom;

namespace {
const operon::model::TechParams kTech =
    operon::model::TechParams::dac18_defaults();
}

TEST(Thermal, AmbientWhenNoPower) {
  ocore::PowerMap map;
  map.cells = 16;
  map.extent = og::BBox::of({0, 0}, {10000, 10000});
  map.optical.assign(16 * 16, 0.0);
  map.electrical.assign(16 * 16, 0.0);
  oth::ThermalParams params;
  const oth::TemperatureField field(map, params);
  EXPECT_DOUBLE_EQ(field.max_c(), params.ambient_c);
  EXPECT_DOUBLE_EQ(field.min_c(), params.ambient_c);
  EXPECT_DOUBLE_EQ(field.at({5000, 5000}), params.ambient_c);
}

TEST(Thermal, HotspotPeaksAtSourceAndDiffuses) {
  ocore::PowerMap map;
  map.cells = 32;
  map.extent = og::BBox::of({0, 0}, {10000, 10000});
  map.optical.assign(32 * 32, 0.0);
  map.electrical.assign(32 * 32, 0.0);
  map.electrical_at(16, 16) = 100.0;  // point source in the middle
  oth::ThermalParams params;
  const oth::TemperatureField field(map, params);
  const double center = field.at({5156, 5156});
  const double near = field.at({6000, 5156});
  const double far = field.at({500, 500});
  EXPECT_GT(center, near);
  EXPECT_GT(near, far);
  EXPECT_NEAR(far, params.ambient_c, 0.5);
  EXPECT_GT(field.max_c(), params.ambient_c);
}

TEST(Thermal, TuningEnergyScalesWithOffset) {
  // Two identical designs analyzed with different target temperatures:
  // farther target -> more tuning energy.
  operon::benchgen::BenchmarkSpec spec;
  spec.num_groups = 6;
  spec.seed = 91;
  const operon::model::Design design =
      operon::benchgen::generate_benchmark(spec);
  ocore::OperonOptions options;
  const ocore::OperonResult result = ocore::run_operon(design, options);
  std::vector<operon::codesign::Candidate> chosen;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    chosen.push_back(result.sets[i].options[result.selection[i]]);
  }

  oth::ThermalParams near_target;
  near_target.target_c = 46.0;
  oth::ThermalParams far_target = near_target;
  far_target.target_c = 80.0;
  const auto near_report =
      oth::analyze(design.chip, result.sets, chosen, kTech, near_target);
  const auto far_report =
      oth::analyze(design.chip, result.sets, chosen, kTech, far_target);
  EXPECT_GT(near_report.rings.size(), 0u);
  EXPECT_EQ(near_report.rings.size(), far_report.rings.size());
  EXPECT_LT(near_report.total_tuning_pj, far_report.total_tuning_pj);
  // Ring count matches the conversion-site count of the selection.
  std::size_t sites = 0;
  for (const auto& cand : chosen) {
    sites += cand.modulator_sites.size() + cand.detector_sites.size();
  }
  EXPECT_EQ(near_report.rings.size(), sites);
}

TEST(Thermal, CoolerElectricalLayerPaysLessTuning) {
  // The extension's headline: under a tight budget GLOW falls back to
  // copper more, heating the die; OPERON's rings then need less tuning.
  operon::model::TechParams tight = kTech;
  tight.optical.max_loss_db = 7.0;
  operon::benchgen::BenchmarkSpec spec;
  spec.num_groups = 24;
  spec.bits_lo = 4;
  spec.bits_hi = 10;
  spec.sink_blocks_lo = 2;
  spec.sink_blocks_hi = 3;
  spec.seed = 92;
  const operon::model::Design design =
      operon::benchgen::generate_benchmark(spec);

  ocore::OperonOptions options;
  options.params = tight;
  const ocore::OperonResult result = ocore::run_operon(design, options);
  const auto glow =
      operon::baseline::route_optical_glow(result.sets, tight);
  std::vector<operon::codesign::Candidate> operon_chosen;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    operon_chosen.push_back(result.sets[i].options[result.selection[i]]);
  }
  if (result.stats.power_pj >= glow.total_power_pj) {
    GTEST_SKIP() << "instance did not separate OPERON from GLOW";
  }

  oth::ThermalParams thermal;
  const auto operon_report =
      oth::analyze(design.chip, result.sets, operon_chosen, tight, thermal);
  const auto glow_report =
      oth::analyze(design.chip, result.sets, glow.chosen, tight, thermal);
  EXPECT_LE(operon_report.max_temperature_c,
            glow_report.max_temperature_c + 1e-9);
}
